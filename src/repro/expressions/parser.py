"""Recursive-descent parser for the guard / measure expression language.

Grammar (in decreasing binding strength)::

    expression  := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | comparison
    comparison  := arithmetic ((= | <> | != | < | <= | > | >=) arithmetic)?
    arithmetic  := term ((+ | -) term)*
    term        := factor ((* | /) factor)*
    factor      := NUMBER | PLACE | IDENTIFIER | TRUE | FALSE
                 | '(' expression ')' | '-' factor

A comparison without a comparison operator is simply an arithmetic value,
which allows the same grammar to be used for rate expressions and reward
functions (e.g. ``#VM_UP1 + #VM_UP2``).
"""

from __future__ import annotations

from repro.exceptions import ExpressionError
from repro.expressions.ast import (
    ArithmeticOp,
    BooleanLiteral,
    BooleanOp,
    Comparison,
    Expression,
    Identifier,
    Negate,
    Not,
    NumberLiteral,
    TokenCount,
)
from repro.expressions.lexer import tokenize
from repro.expressions.tokens import Token, TokenType

_COMPARISON_OPERATORS = {
    TokenType.EQ: "=",
    TokenType.NEQ: "<>",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
}


class _Parser:
    """Stateful cursor over the token list."""

    def __init__(self, source: str):
        self._source = source
        self._tokens = tokenize(source)
        self._index = 0

    def parse(self) -> Expression:
        expression = self._parse_or()
        self._expect(TokenType.END)
        return expression

    # --- token helpers -------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _match(self, *types: TokenType) -> Token | None:
        if self._peek().type in types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ExpressionError(
                f"expected {token_type.value} but found {token.type.value} "
                f"({token.text!r}) at position {token.position} in {self._source!r}"
            )
        return self._advance()

    # --- grammar productions --------------------------------------------

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._match(TokenType.OR):
            right = self._parse_and()
            left = BooleanOp("OR", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._match(TokenType.AND):
            right = self._parse_not()
            left = BooleanOp("AND", left, right)
        return left

    def _parse_not(self) -> Expression:
        if self._match(TokenType.NOT):
            return Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_arithmetic()
        token = self._match(*_COMPARISON_OPERATORS)
        if token is None:
            return left
        right = self._parse_arithmetic()
        return Comparison(_COMPARISON_OPERATORS[token.type], left, right)

    def _parse_arithmetic(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self._match(TokenType.PLUS, TokenType.MINUS)
            if token is None:
                return left
            operator = "+" if token.type is TokenType.PLUS else "-"
            right = self._parse_term()
            left = ArithmeticOp(operator, left, right)

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            token = self._match(TokenType.STAR, TokenType.SLASH)
            if token is None:
                return left
            operator = "*" if token.type is TokenType.STAR else "/"
            right = self._parse_factor()
            left = ArithmeticOp(operator, left, right)

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return NumberLiteral(float(token.value))
        if token.type is TokenType.PLACE:
            self._advance()
            return TokenCount(str(token.value))
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return Identifier(str(token.value))
        if token.type is TokenType.TRUE:
            self._advance()
            return BooleanLiteral(True)
        if token.type is TokenType.FALSE:
            self._advance()
            return BooleanLiteral(False)
        if token.type is TokenType.MINUS:
            self._advance()
            return Negate(self._parse_factor())
        if token.type is TokenType.LPAREN:
            self._advance()
            expression = self._parse_or()
            self._expect(TokenType.RPAREN)
            return expression
        raise ExpressionError(
            f"unexpected token {token.text!r} at position {token.position} "
            f"in {self._source!r}"
        )


def parse(source: str) -> Expression:
    """Parse ``source`` into an :class:`~repro.expressions.ast.Expression`.

    Raises:
        ExpressionError: if the source does not conform to the grammar.
    """
    if not isinstance(source, str):
        raise ExpressionError(f"expression source must be a string, got {type(source)!r}")
    if not source.strip():
        raise ExpressionError("expression source is empty")
    return _Parser(source).parse()
