"""Lexer for the guard / measure expression language."""

from __future__ import annotations

from repro.exceptions import ExpressionError
from repro.expressions.tokens import KEYWORDS, Token, TokenType

_SINGLE_CHAR_TOKENS = {
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
}


def _is_identifier_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_identifier_char(char: str) -> bool:
    return char.isalnum() or char == "_"


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into a list of tokens terminated by an END token.

    Raises:
        ExpressionError: on any character that does not belong to the
            language.
    """
    tokens: list[Token] = []
    position = 0
    length = len(source)
    while position < length:
        char = source[position]
        if char.isspace():
            position += 1
            continue
        if char in _SINGLE_CHAR_TOKENS:
            tokens.append(Token(_SINGLE_CHAR_TOKENS[char], char, position))
            position += 1
            continue
        if char == "#":
            start = position
            position += 1
            name_start = position
            while position < length and _is_identifier_char(source[position]):
                position += 1
            name = source[name_start:position]
            if not name:
                raise ExpressionError(
                    f"expected a place name after '#' at position {start} in {source!r}"
                )
            tokens.append(Token(TokenType.PLACE, source[start:position], start, name))
            continue
        if char.isdigit() or (char == "." and position + 1 < length and source[position + 1].isdigit()):
            start = position
            position = _scan_number(source, position)
            text = source[start:position]
            value = float(text) if any(c in text for c in ".eE") else int(text)
            tokens.append(Token(TokenType.NUMBER, text, start, value))
            continue
        if _is_identifier_start(char):
            start = position
            while position < length and _is_identifier_char(source[position]):
                position += 1
            text = source[start:position]
            keyword = KEYWORDS.get(text.upper())
            if keyword is not None:
                tokens.append(Token(keyword, text, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, text, start, text))
            continue
        if char in "<>=!":
            start = position
            token_type, position = _scan_comparison(source, position)
            tokens.append(Token(token_type, source[start:position], start))
            continue
        raise ExpressionError(
            f"unexpected character {char!r} at position {position} in {source!r}"
        )
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _scan_number(source: str, position: int) -> int:
    length = len(source)
    while position < length and (source[position].isdigit() or source[position] == "."):
        position += 1
    if position < length and source[position] in "eE":
        lookahead = position + 1
        if lookahead < length and source[lookahead] in "+-":
            lookahead += 1
        if lookahead < length and source[lookahead].isdigit():
            position = lookahead
            while position < length and source[position].isdigit():
                position += 1
    return position


def _scan_comparison(source: str, position: int) -> tuple:
    char = source[position]
    length = len(source)
    nxt = source[position + 1] if position + 1 < length else ""
    if char == "=":
        return TokenType.EQ, position + (2 if nxt == "=" else 1)
    if char == "!":
        if nxt != "=":
            raise ExpressionError(
                f"unexpected character '!' at position {position} in {source!r}"
            )
        return TokenType.NEQ, position + 2
    if char == "<":
        if nxt == "=":
            return TokenType.LE, position + 2
        if nxt == ">":
            return TokenType.NEQ, position + 2
        return TokenType.LT, position + 1
    if char == ">":
        if nxt == "=":
            return TokenType.GE, position + 2
        return TokenType.GT, position + 1
    raise ExpressionError(
        f"unexpected character {char!r} at position {position} in {source!r}"
    )
