"""Evaluation and compilation of guard / measure expressions.

Two evaluation strategies are provided:

* :func:`evaluate` — interpret an AST against a ``{place: tokens}`` mapping.
  Convenient for tests and one-off measure evaluation.
* :func:`compile_expression` — compile an AST into a closure over an indexed
  marking vector (a tuple/ndarray of token counts).  The SPN reachability
  generator and simulator evaluate guards millions of times, so guards are
  compiled once per net and executed as plain nested Python closures with the
  place indices already resolved.

Boolean results are returned as ``bool``; arithmetic results as ``float``
(integers preserved as whole-valued floats).  Numbers used in a boolean
context follow the usual "non-zero is true" convention, and booleans used in
an arithmetic context count as 0/1, matching the semantics of TimeNET-style
guard expressions.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence, Union

import numpy as np

from repro.exceptions import ExpressionError
from repro.expressions.ast import (
    ArithmeticOp,
    BooleanLiteral,
    BooleanOp,
    Comparison,
    Expression,
    Identifier,
    Negate,
    Not,
    NumberLiteral,
    TokenCount,
)
from repro.expressions.parser import parse

Value = Union[bool, float]
CompiledExpression = Callable[[Sequence[int]], Value]

_EQUALITY_TOLERANCE = 1e-12


def _as_number(value: Value) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    return float(value)


def _as_bool(value: Value) -> bool:
    if isinstance(value, bool):
        return value
    return value != 0.0


def _compare(operator: str, left: float, right: float) -> bool:
    if operator == "=":
        return abs(left - right) <= _EQUALITY_TOLERANCE
    if operator == "<>":
        return abs(left - right) > _EQUALITY_TOLERANCE
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise ExpressionError(f"unknown comparison operator {operator!r}")


def _arithmetic(operator: str, left: float, right: float) -> float:
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0.0:
            raise ExpressionError("division by zero while evaluating expression")
        return left / right
    raise ExpressionError(f"unknown arithmetic operator {operator!r}")


def evaluate(
    expression: Union[Expression, str],
    marking: Mapping[str, int],
    environment: Mapping[str, float] | None = None,
) -> Value:
    """Evaluate ``expression`` against a ``{place_name: token_count}`` mapping.

    Args:
        expression: an AST or source text (parsed on the fly).
        marking: token counts; every place referenced by the expression must
            be present.
        environment: optional values for free identifiers.

    Raises:
        ExpressionError: on unknown places/identifiers or evaluation errors.
    """
    if isinstance(expression, str):
        expression = parse(expression)
    environment = environment or {}

    if isinstance(expression, NumberLiteral):
        return float(expression.value)
    if isinstance(expression, BooleanLiteral):
        return expression.value
    if isinstance(expression, TokenCount):
        if expression.place not in marking:
            raise ExpressionError(f"unknown place {expression.place!r} in expression")
        return float(marking[expression.place])
    if isinstance(expression, Identifier):
        if expression.name not in environment:
            raise ExpressionError(f"unknown identifier {expression.name!r} in expression")
        return float(environment[expression.name])
    if isinstance(expression, Negate):
        return -_as_number(evaluate(expression.operand, marking, environment))
    if isinstance(expression, ArithmeticOp):
        return _arithmetic(
            expression.operator,
            _as_number(evaluate(expression.left, marking, environment)),
            _as_number(evaluate(expression.right, marking, environment)),
        )
    if isinstance(expression, Comparison):
        return _compare(
            expression.operator,
            _as_number(evaluate(expression.left, marking, environment)),
            _as_number(evaluate(expression.right, marking, environment)),
        )
    if isinstance(expression, BooleanOp):
        left = _as_bool(evaluate(expression.left, marking, environment))
        if expression.operator == "AND":
            return left and _as_bool(evaluate(expression.right, marking, environment))
        if expression.operator == "OR":
            return left or _as_bool(evaluate(expression.right, marking, environment))
        raise ExpressionError(f"unknown boolean operator {expression.operator!r}")
    if isinstance(expression, Not):
        return not _as_bool(evaluate(expression.operand, marking, environment))
    raise ExpressionError(f"unsupported expression node {type(expression)!r}")


def compile_expression(
    expression: Union[Expression, str],
    place_index: Mapping[str, int],
    environment: Mapping[str, float] | None = None,
) -> CompiledExpression:
    """Compile ``expression`` into a closure over an indexed marking vector.

    Args:
        expression: an AST or source text (parsed on the fly).
        place_index: mapping from place name to its position in the marking
            vectors the closure will be called with.
        environment: optional values for free identifiers, resolved at
            compile time.

    Returns:
        A callable ``f(marking_vector) -> bool | float``.

    Raises:
        ExpressionError: if the expression references a place not present in
            ``place_index`` or an identifier not present in ``environment``.
    """
    if isinstance(expression, str):
        expression = parse(expression)
    environment = environment or {}

    if isinstance(expression, NumberLiteral):
        constant = float(expression.value)
        return lambda marking: constant
    if isinstance(expression, BooleanLiteral):
        literal = expression.value
        return lambda marking: literal
    if isinstance(expression, TokenCount):
        if expression.place not in place_index:
            raise ExpressionError(
                f"expression references unknown place {expression.place!r}; "
                f"known places: {sorted(place_index)}"
            )
        index = place_index[expression.place]
        return lambda marking: float(marking[index])
    if isinstance(expression, Identifier):
        if expression.name not in environment:
            raise ExpressionError(
                f"expression references unknown identifier {expression.name!r}"
            )
        constant = float(environment[expression.name])
        return lambda marking: constant
    if isinstance(expression, Negate):
        operand = compile_expression(expression.operand, place_index, environment)
        return lambda marking: -_as_number(operand(marking))
    if isinstance(expression, ArithmeticOp):
        left = compile_expression(expression.left, place_index, environment)
        right = compile_expression(expression.right, place_index, environment)
        operator = expression.operator
        if operator == "+":
            return lambda marking: _as_number(left(marking)) + _as_number(right(marking))
        if operator == "-":
            return lambda marking: _as_number(left(marking)) - _as_number(right(marking))
        if operator == "*":
            return lambda marking: _as_number(left(marking)) * _as_number(right(marking))
        if operator == "/":
            return lambda marking: _arithmetic(
                "/", _as_number(left(marking)), _as_number(right(marking))
            )
        raise ExpressionError(f"unknown arithmetic operator {operator!r}")
    if isinstance(expression, Comparison):
        left = compile_expression(expression.left, place_index, environment)
        right = compile_expression(expression.right, place_index, environment)
        operator = expression.operator
        if operator == "=":
            return (
                lambda marking: abs(_as_number(left(marking)) - _as_number(right(marking)))
                <= _EQUALITY_TOLERANCE
            )
        if operator == "<>":
            return (
                lambda marking: abs(_as_number(left(marking)) - _as_number(right(marking)))
                > _EQUALITY_TOLERANCE
            )
        if operator == "<":
            return lambda marking: _as_number(left(marking)) < _as_number(right(marking))
        if operator == "<=":
            return lambda marking: _as_number(left(marking)) <= _as_number(right(marking))
        if operator == ">":
            return lambda marking: _as_number(left(marking)) > _as_number(right(marking))
        if operator == ">=":
            return lambda marking: _as_number(left(marking)) >= _as_number(right(marking))
        raise ExpressionError(f"unknown comparison operator {operator!r}")
    if isinstance(expression, BooleanOp):
        left = compile_expression(expression.left, place_index, environment)
        right = compile_expression(expression.right, place_index, environment)
        if expression.operator == "AND":
            return lambda marking: _as_bool(left(marking)) and _as_bool(right(marking))
        if expression.operator == "OR":
            return lambda marking: _as_bool(left(marking)) or _as_bool(right(marking))
        raise ExpressionError(f"unknown boolean operator {expression.operator!r}")
    if isinstance(expression, Not):
        operand = compile_expression(expression.operand, place_index, environment)
        return lambda marking: not _as_bool(operand(marking))
    raise ExpressionError(f"unsupported expression node {type(expression)!r}")


# --- vectorized compilation --------------------------------------------------

#: A closure over an ``(F, P)`` int block of markings, returning a value (or
#: boolean mask) per row; scalars stand for row-independent constants.
VectorizedExpression = Callable[[np.ndarray], Union[np.ndarray, bool, float]]


def _as_number_block(value):
    if isinstance(value, np.ndarray):
        return value.astype(np.float64) if value.dtype != np.float64 else value
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    return float(value)


def _as_bool_block(value):
    if isinstance(value, np.ndarray):
        return value if value.dtype == bool else value != 0.0
    if isinstance(value, bool):
        return value
    return value != 0.0


def compile_expression_vector(
    expression: Union[Expression, str],
    place_index: Mapping[str, int],
    environment: Mapping[str, float] | None = None,
) -> VectorizedExpression:
    """Compile ``expression`` into a closure over an ``(F, P)`` marking block.

    The returned callable evaluates the expression for every row of a 2-D
    int array of markings at once and returns a per-row result (a numpy
    array, or a scalar when the expression is marking-independent).  It is
    the batch counterpart of :func:`compile_expression` and follows the same
    semantics; the only divergence is that ``AND`` / ``OR`` evaluate both
    operands instead of short-circuiting (guard expressions are pure, so
    this is observable only through evaluation errors such as division by
    zero in a dead branch).

    Raises:
        ExpressionError: if the expression references a place not present in
            ``place_index`` or an identifier not present in ``environment``.
    """
    if isinstance(expression, str):
        expression = parse(expression)
    environment = environment or {}

    if isinstance(expression, NumberLiteral):
        constant = float(expression.value)
        return lambda block: constant
    if isinstance(expression, BooleanLiteral):
        literal = expression.value
        return lambda block: literal
    if isinstance(expression, TokenCount):
        if expression.place not in place_index:
            raise ExpressionError(
                f"expression references unknown place {expression.place!r}; "
                f"known places: {sorted(place_index)}"
            )
        index = place_index[expression.place]
        return lambda block: block[:, index].astype(np.float64)
    if isinstance(expression, Identifier):
        if expression.name not in environment:
            raise ExpressionError(
                f"expression references unknown identifier {expression.name!r}"
            )
        constant = float(environment[expression.name])
        return lambda block: constant
    if isinstance(expression, Negate):
        operand = compile_expression_vector(expression.operand, place_index, environment)
        return lambda block: -_as_number_block(operand(block))
    if isinstance(expression, ArithmeticOp):
        left = compile_expression_vector(expression.left, place_index, environment)
        right = compile_expression_vector(expression.right, place_index, environment)
        operator = expression.operator
        if operator == "+":
            return lambda block: _as_number_block(left(block)) + _as_number_block(right(block))
        if operator == "-":
            return lambda block: _as_number_block(left(block)) - _as_number_block(right(block))
        if operator == "*":
            return lambda block: _as_number_block(left(block)) * _as_number_block(right(block))
        if operator == "/":

            def divide(block):
                numerator = _as_number_block(left(block))
                denominator = _as_number_block(right(block))
                if np.any(np.asarray(denominator) == 0.0):
                    raise ExpressionError("division by zero while evaluating expression")
                return numerator / denominator

            return divide
        raise ExpressionError(f"unknown arithmetic operator {operator!r}")
    if isinstance(expression, Comparison):
        left = compile_expression_vector(expression.left, place_index, environment)
        right = compile_expression_vector(expression.right, place_index, environment)
        operator = expression.operator
        if operator == "=":
            return (
                lambda block: np.abs(
                    _as_number_block(left(block)) - _as_number_block(right(block))
                )
                <= _EQUALITY_TOLERANCE
            )
        if operator == "<>":
            return (
                lambda block: np.abs(
                    _as_number_block(left(block)) - _as_number_block(right(block))
                )
                > _EQUALITY_TOLERANCE
            )
        if operator == "<":
            return lambda block: _as_number_block(left(block)) < _as_number_block(right(block))
        if operator == "<=":
            return lambda block: _as_number_block(left(block)) <= _as_number_block(right(block))
        if operator == ">":
            return lambda block: _as_number_block(left(block)) > _as_number_block(right(block))
        if operator == ">=":
            return lambda block: _as_number_block(left(block)) >= _as_number_block(right(block))
        raise ExpressionError(f"unknown comparison operator {operator!r}")
    if isinstance(expression, BooleanOp):
        left = compile_expression_vector(expression.left, place_index, environment)
        right = compile_expression_vector(expression.right, place_index, environment)
        if expression.operator == "AND":
            return lambda block: np.logical_and(
                _as_bool_block(left(block)), _as_bool_block(right(block))
            )
        if expression.operator == "OR":
            return lambda block: np.logical_or(
                _as_bool_block(left(block)), _as_bool_block(right(block))
            )
        raise ExpressionError(f"unknown boolean operator {expression.operator!r}")
    if isinstance(expression, Not):
        operand = compile_expression_vector(expression.operand, place_index, environment)
        return lambda block: np.logical_not(_as_bool_block(operand(block)))
    raise ExpressionError(f"unsupported expression node {type(expression)!r}")
