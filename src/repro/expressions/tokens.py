"""Token definitions for the guard / measure expression language.

The language mirrors the notation used in the paper's guard tables (Tables II
and IV) and measure definitions, e.g.::

    (#OSPM_UP1 = 0) OR (#NAS_NET_UP1 = 0) OR (#DC_UP1 = 0)
    (#VM_UP1 + #VM_UP2 + #VM_UP3 + #VM_UP4) >= 2

``#place`` denotes the number of tokens in ``place``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories recognised by the lexer."""

    NUMBER = "NUMBER"
    PLACE = "PLACE"  # '#' followed by an identifier
    IDENTIFIER = "IDENTIFIER"  # bare name (named constants / parameters)
    PLUS = "PLUS"
    MINUS = "MINUS"
    STAR = "STAR"
    SLASH = "SLASH"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    EQ = "EQ"  # '=' or '=='
    NEQ = "NEQ"  # '<>' or '!='
    GT = "GT"
    GE = "GE"
    LT = "LT"
    LE = "LE"
    AND = "AND"
    OR = "OR"
    NOT = "NOT"
    TRUE = "TRUE"
    FALSE = "FALSE"
    END = "END"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: lexical category.
        text: the raw characters matched.
        position: character offset of the token start in the source string,
            used for error reporting.
        value: numeric value for NUMBER tokens, place name for PLACE tokens,
            identifier name for IDENTIFIER tokens, ``None`` otherwise.
    """

    type: TokenType
    text: str
    position: int
    value: object = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type.value}({self.text!r}@{self.position})"


KEYWORDS = {
    "AND": TokenType.AND,
    "OR": TokenType.OR,
    "NOT": TokenType.NOT,
    "TRUE": TokenType.TRUE,
    "FALSE": TokenType.FALSE,
}
