"""Guard and measure expression language (lexer, parser, AST, compiler).

The language follows the notation of the paper's guard tables, e.g.
``(#OSPM_UP1=0) OR (#NAS_NET_UP1=0) OR (#DC_UP1=0)``.
"""

from repro.expressions.ast import (
    ArithmeticOp,
    BooleanLiteral,
    BooleanOp,
    Comparison,
    Expression,
    Identifier,
    Negate,
    Not,
    NumberLiteral,
    TokenCount,
)
from repro.expressions.compiler import CompiledExpression, compile_expression, evaluate
from repro.expressions.lexer import tokenize
from repro.expressions.parser import parse

__all__ = [
    "ArithmeticOp",
    "BooleanLiteral",
    "BooleanOp",
    "Comparison",
    "Expression",
    "Identifier",
    "Negate",
    "Not",
    "NumberLiteral",
    "TokenCount",
    "CompiledExpression",
    "compile_expression",
    "evaluate",
    "tokenize",
    "parse",
]
