"""Abstract syntax tree for guard / measure expressions.

Nodes are small immutable dataclasses.  Every node knows how to report the set
of place names it references (used by the SPN engine to bind guards against a
net) and how to render itself back to source text (used for Graphviz export
and error messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet


class Expression:
    """Base class for every AST node."""

    def places(self) -> FrozenSet[str]:
        """Names of all places referenced by this expression."""
        raise NotImplementedError

    def identifiers(self) -> FrozenSet[str]:
        """Names of all free (non-place) identifiers referenced."""
        raise NotImplementedError

    def to_source(self) -> str:
        """Render the expression back to parsable source text."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_source()


@dataclass(frozen=True)
class NumberLiteral(Expression):
    """A numeric constant."""

    value: float

    def places(self) -> FrozenSet[str]:
        return frozenset()

    def identifiers(self) -> FrozenSet[str]:
        return frozenset()

    def to_source(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(float(self.value))


@dataclass(frozen=True)
class BooleanLiteral(Expression):
    """The constants ``TRUE`` and ``FALSE``."""

    value: bool

    def places(self) -> FrozenSet[str]:
        return frozenset()

    def identifiers(self) -> FrozenSet[str]:
        return frozenset()

    def to_source(self) -> str:
        return "TRUE" if self.value else "FALSE"


@dataclass(frozen=True)
class TokenCount(Expression):
    """``#place`` — the number of tokens in a place."""

    place: str

    def places(self) -> FrozenSet[str]:
        return frozenset({self.place})

    def identifiers(self) -> FrozenSet[str]:
        return frozenset()

    def to_source(self) -> str:
        return f"#{self.place}"


@dataclass(frozen=True)
class Identifier(Expression):
    """A named parameter resolved from an environment at compile time."""

    name: str

    def places(self) -> FrozenSet[str]:
        return frozenset()

    def identifiers(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def to_source(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArithmeticOp(Expression):
    """Binary arithmetic: ``+``, ``-``, ``*`` or ``/``."""

    operator: str
    left: Expression
    right: Expression

    def places(self) -> FrozenSet[str]:
        return self.left.places() | self.right.places()

    def identifiers(self) -> FrozenSet[str]:
        return self.left.identifiers() | self.right.identifiers()

    def to_source(self) -> str:
        return f"({self.left.to_source()} {self.operator} {self.right.to_source()})"


@dataclass(frozen=True)
class Negate(Expression):
    """Unary arithmetic minus."""

    operand: Expression

    def places(self) -> FrozenSet[str]:
        return self.operand.places()

    def identifiers(self) -> FrozenSet[str]:
        return self.operand.identifiers()

    def to_source(self) -> str:
        return f"(-{self.operand.to_source()})"


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison: ``=``, ``<>``, ``<``, ``<=``, ``>`` or ``>=``."""

    operator: str
    left: Expression
    right: Expression

    def places(self) -> FrozenSet[str]:
        return self.left.places() | self.right.places()

    def identifiers(self) -> FrozenSet[str]:
        return self.left.identifiers() | self.right.identifiers()

    def to_source(self) -> str:
        return f"({self.left.to_source()} {self.operator} {self.right.to_source()})"


@dataclass(frozen=True)
class BooleanOp(Expression):
    """Binary boolean connective: ``AND`` or ``OR``."""

    operator: str
    left: Expression
    right: Expression

    def places(self) -> FrozenSet[str]:
        return self.left.places() | self.right.places()

    def identifiers(self) -> FrozenSet[str]:
        return self.left.identifiers() | self.right.identifiers()

    def to_source(self) -> str:
        return f"({self.left.to_source()} {self.operator} {self.right.to_source()})"


@dataclass(frozen=True)
class Not(Expression):
    """Boolean negation."""

    operand: Expression

    def places(self) -> FrozenSet[str]:
        return self.operand.places()

    def identifiers(self) -> FrozenSet[str]:
        return self.operand.identifiers()

    def to_source(self) -> str:
        return f"NOT ({self.operand.to_source()})"
