"""Tests for the zero-copy multiprocess sweep scheduler and backend parity."""

import time

import numpy as np
import pytest

from repro.engine import (
    KrylovSettings,
    RewardMatrix,
    ScenarioBatchEngine,
    ScenarioSpec,
    SweepScheduler,
    UnsupportedMeasure,
    contiguous_chunks,
    shared_memory_available,
)
from repro.engine.parallel import STATUS_SOLVED, SweepPlan, leaked_segments
from repro.spn import (
    ExpectedTokensMeasure,
    ProbabilityMeasure,
    ThroughputMeasure,
    generate_tangible_reachability_graph,
)

from tests.spn.nets import machine_repair

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="shared-memory segments are unavailable in this environment",
)


@pytest.fixture(autouse=True)
def _four_effective_cores(monkeypatch):
    """Pretend the machine has four effective cores.

    The engine clamps worker counts to the effective cores (and ``auto``
    refuses to parallelise on one core), so on a single-core CI box the
    multi-chunk code paths these tests exist for would silently degenerate
    to one worker.  Pinning the reported core count keeps the chunking,
    warm-start and shared-memory machinery genuinely exercised (the workers
    merely time-share the physical core).
    """
    monkeypatch.setattr("repro.engine.dispatch.effective_cpu_count", lambda: 4)

#: Cross-backend agreement demanded of every measure value: Δ < 1e-12,
#: absolute for probability-scale values and relative for unbounded measures
#: (expected token counts scale the same solver-level deltas by their
#: magnitude).
TOLERANCE = 1e-12


def agree(value: float, reference: float) -> bool:
    return value == pytest.approx(reference, rel=TOLERANCE, abs=TOLERANCE)


@pytest.fixture(scope="module")
def graph():
    return generate_tangible_reachability_graph(
        machine_repair(machines=400, mttf=10.0, mttr=1.0)
    )


def sweep_specs():
    """A seeded sweep: neighbouring points differ in one delay."""
    return [
        ScenarioSpec(name=f"mttf={mttf:g}", delays={"FAIL": mttf})
        for mttf in (5.0, 6.5, 8.0, 10.0, 14.0, 20.0, 28.0, 40.0)
    ]


def sweep_measures():
    return [
        ProbabilityMeasure("mostly_up", "#BROKEN <= 390"),
        ExpectedTokensMeasure("broken", "#BROKEN"),
        ThroughputMeasure("repairs", "REPAIR"),
    ]


class TestContiguousChunks:
    def test_chunks_are_contiguous_and_cover_the_range(self):
        chunks = contiguous_chunks(10, 3)
        assert len(chunks) == 3
        flattened = [index for chunk in chunks for index in chunk]
        assert flattened == list(range(10))
        for chunk in chunks:
            assert list(chunk) == list(range(chunk[0], chunk[-1] + 1))

    def test_never_more_chunks_than_items(self):
        assert len(contiguous_chunks(2, 8)) == 2
        assert contiguous_chunks(0, 4) == []

    def test_sizes_differ_by_at_most_one(self):
        sizes = [len(chunk) for chunk in contiguous_chunks(11, 4)]
        assert max(sizes) - min(sizes) <= 1


class TestCrossBackendDeterminism:
    @pytest.fixture(scope="class")
    def reference(self, graph):
        engine = ScenarioBatchEngine(graph)
        results = engine.run(sweep_specs(), sweep_measures(), backend="serial")
        assert engine.last_run_backend == "serial"
        return results

    @pytest.mark.parametrize(
        "backend,workers", [("serial", 1), ("thread", 3), ("process", 3)]
    )
    def test_backends_agree_with_serial_reference(
        self, graph, reference, backend, workers
    ):
        engine = ScenarioBatchEngine(graph)
        results = engine.run(
            sweep_specs(), sweep_measures(), max_workers=workers, backend=backend
        )
        assert engine.last_run_backend == backend
        assert [r.name for r in results] == [r.name for r in reference]
        for ours, ref in zip(results, reference):
            for measure in sweep_measures():
                assert agree(ours.value(measure.name), ref.value(measure.name))

    def test_thread_and_process_chunking_is_identical(self, graph):
        """Same contiguous chunks -> same warm-start chains -> same floats."""
        thread_engine = ScenarioBatchEngine(graph)
        thread = thread_engine.run(
            sweep_specs(), sweep_measures(), max_workers=2, backend="thread"
        )
        process_engine = ScenarioBatchEngine(graph)
        process = process_engine.run(
            sweep_specs(), sweep_measures(), max_workers=2, backend="process"
        )
        for a, b in zip(thread, process):
            for measure in sweep_measures():
                assert agree(a.value(measure.name), b.value(measure.name))

    def test_keep_solutions_across_backends(self, graph):
        specs, measures = sweep_specs()[:4], sweep_measures()
        for backend, workers in (("serial", 1), ("thread", 2), ("process", 2)):
            engine = ScenarioBatchEngine(graph)
            results = engine.run(
                specs,
                measures,
                max_workers=workers,
                backend=backend,
                keep_solutions=True,
            )
            for spec, result in zip(specs, results):
                solution = result.solution
                assert solution is not None
                assert solution.probabilities.sum() == pytest.approx(1.0, abs=1e-9)
                # The kept solution's graph is re-rated to the scenario, so
                # re-evaluating the measures reproduces the batch values.
                assert solution.graph.base_rates["FAIL"] == pytest.approx(
                    1.0 / spec.delays["FAIL"]
                )
                for measure in measures:
                    assert agree(solution.measure(measure), result.value(measure.name))

    def test_auto_picks_process_when_the_model_predicts_a_win(self, graph):
        """With solve times that dwarf the spin-up cost, auto goes parallel."""
        from repro.engine.dispatch import CostObservations

        engine = ScenarioBatchEngine(graph)
        engine._cost_observations = CostObservations(
            cold_solve_seconds=1.5, warm_solve_seconds=1.0, source="history"
        )
        engine.run(sweep_specs(), sweep_measures()[:1], max_workers=2)
        assert engine.last_run_backend == "process"
        assert engine.last_dispatch is not None
        assert engine.last_dispatch.backend == "process"
        assert "predicted" in engine.last_dispatch.reason

    def test_auto_stays_serial_when_overhead_dominates(self, graph):
        """A fast small batch cannot amortise fork + factorisation: serial."""
        from repro.engine.dispatch import CostObservations

        engine = ScenarioBatchEngine(graph)
        engine._cost_observations = CostObservations(
            cold_solve_seconds=5e-4, warm_solve_seconds=1e-4, source="history"
        )
        engine.run(sweep_specs()[:3], sweep_measures()[:1], max_workers=2)
        assert engine.last_run_backend == "serial"

    def test_auto_probe_calibrates_and_solves_real_scenarios(self, graph):
        """The two probe solves are returned as results, not thrown away."""
        engine = ScenarioBatchEngine(graph)
        results = engine.run(sweep_specs(), sweep_measures(), max_workers=2)
        assert engine._cost_observations is not None
        assert engine._cost_observations.source == "probe"
        reference = ScenarioBatchEngine(graph).run(
            sweep_specs(), sweep_measures(), backend="serial"
        )
        for ours, ref in zip(results, reference):
            for measure in sweep_measures():
                assert agree(ours.value(measure.name), ref.value(measure.name))

    def test_results_keep_spec_order_and_metadata(self, graph):
        engine = ScenarioBatchEngine(graph)
        specs = sweep_specs()
        results = engine.run(specs, sweep_measures()[:1], max_workers=3)
        assert [r.spec for r in results] == specs
        assert all(r.number_of_states == graph.number_of_states for r in results)
        assert all(r.solve_seconds >= 0.0 for r in results)


class TestGracefulDegradation:
    def test_unknown_backend_rejected(self, graph):
        engine = ScenarioBatchEngine(graph)
        with pytest.raises(ValueError):
            engine.run(sweep_specs()[:2], sweep_measures()[:1], backend="gpu")

    def test_empty_batch(self, graph):
        assert ScenarioBatchEngine(graph).run([], sweep_measures()[:1]) == []

    def test_fallback_when_shared_memory_unavailable(self, graph, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.parallel.shared_memory_available", lambda: False
        )
        engine = ScenarioBatchEngine(graph)
        with pytest.warns(UserWarning, match="falling back"):
            results = engine.run(
                sweep_specs()[:3],
                sweep_measures(),
                max_workers=2,
                backend="process",
            )
        assert engine.last_run_backend == "thread"
        reference = ScenarioBatchEngine(graph).run(
            sweep_specs()[:3], sweep_measures(), backend="serial"
        )
        for ours, ref in zip(results, reference):
            assert agree(ours.value("broken"), ref.value("broken"))

    def test_auto_degrades_silently_without_shared_memory(self, graph, monkeypatch):
        from repro.engine.dispatch import CostObservations

        monkeypatch.setattr(
            "repro.engine.parallel.shared_memory_available", lambda: False
        )
        engine = ScenarioBatchEngine(graph)
        # Make the model pick the process backend; its shared-memory probe
        # then fails and auto must fall back to threads without warning.
        engine._cost_observations = CostObservations(
            cold_solve_seconds=1.5, warm_solve_seconds=1.0, source="history"
        )
        engine.run(sweep_specs()[:3], sweep_measures()[:1], max_workers=2)
        assert engine.last_run_backend == "thread"

    def test_bounded_memory_sub_batching(self, graph, monkeypatch):
        """A tiny block bound splits the sweep into sub-batches that still
        produce the unsplit serial results (contiguous order preserved)."""
        reference = ScenarioBatchEngine(graph).run(
            sweep_specs(), sweep_measures(), backend="serial"
        )
        monkeypatch.setattr(
            "repro.engine.batch.MAX_SOLUTION_BLOCK_BYTES",
            graph.number_of_states * 8 * 2,  # two scenarios per dispatch
        )
        engine = ScenarioBatchEngine(graph)
        results = engine.run(sweep_specs(), sweep_measures(), backend="serial")
        assert [r.name for r in results] == [r.name for r in reference]
        for ours, ref in zip(results, reference):
            for measure in sweep_measures():
                assert agree(ours.value(measure.name), ref.value(measure.name))

    def test_tiny_chain_uses_threads_instead_of_processes(self):
        tiny = generate_tangible_reachability_graph(
            machine_repair(machines=3, mttf=10.0, mttr=1.0)
        )
        engine = ScenarioBatchEngine(tiny)
        specs = [
            ScenarioSpec(name=f"m{m}", delays={"FAIL": m}) for m in (5.0, 10.0, 20.0)
        ]
        with pytest.warns(UserWarning, match="thread backend"):
            engine.run(
                specs,
                [ProbabilityMeasure("all_up", "#BROKEN == 0")],
                max_workers=2,
                backend="process",
            )
        assert engine.last_run_backend == "thread"


class TestSharedMemoryHygiene:
    def test_no_leaked_segments_after_a_run(self, graph):
        before = leaked_segments()
        engine = ScenarioBatchEngine(graph)
        engine.run(
            sweep_specs(), sweep_measures(), max_workers=2, backend="process"
        )
        assert leaked_segments() == before

    def test_segment_released_when_a_worker_raises(self, graph, monkeypatch):
        from repro.engine.parallel import shutdown_shared_pool

        before = leaked_segments()
        # The persistent pool forks lazily on first use; shutting it down
        # makes the next batch fork fresh workers that inherit the patched
        # module (a pre-existing pool would keep the original function).
        shutdown_shared_pool()
        monkeypatch.setattr(
            "repro.engine.parallel._worker_run_chunk",
            _exploding_chunk,
        )
        engine = ScenarioBatchEngine(graph)
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(
                sweep_specs()[:3],
                sweep_measures()[:1],
                max_workers=2,
                backend="process",
            )
        shutdown_shared_pool()
        assert leaked_segments() == before

    def test_plan_destroy_is_idempotent(self, graph):
        engine = ScenarioBatchEngine(graph)
        plan = SweepPlan(
            engine.graph(), engine.template(), engine.rate_matrix(sweep_specs()[:2])
        )
        assert any(plan.segment_name.lstrip("/") in entry for entry in leaked_segments())
        plan.destroy()
        plan.destroy()
        assert not any(
            plan.segment_name.lstrip("/") in entry for entry in leaked_segments()
        )


def _exploding_chunk(manifest, settings, indices):
    raise RuntimeError("boom")


class TestPersistentPool:
    def test_workers_survive_across_batches(self, graph):
        """Consecutive process batches reuse the same worker processes."""
        from repro.engine.parallel import shared_pool

        engine = ScenarioBatchEngine(graph)
        engine.run(
            sweep_specs()[:4], sweep_measures()[:1], max_workers=2, backend="process"
        )
        assert shared_pool.is_warm(2)
        pool = shared_pool._pool
        pids = set(pool._processes)
        results = engine.run(
            sweep_specs()[4:], sweep_measures()[:1], max_workers=2, backend="process"
        )
        assert shared_pool._pool is pool
        assert set(pool._processes) == pids
        reference = ScenarioBatchEngine(graph).run(
            sweep_specs()[4:], sweep_measures()[:1], backend="serial"
        )
        for ours, ref in zip(results, reference):
            assert agree(ours.value("mostly_up"), ref.value("mostly_up"))

    def test_pool_grows_for_larger_batches(self, graph):
        from repro.engine.parallel import shared_pool

        engine = ScenarioBatchEngine(graph)
        engine.run(
            sweep_specs()[:4], sweep_measures()[:1], max_workers=2, backend="process"
        )
        engine.run(
            sweep_specs(), sweep_measures()[:1], max_workers=3, backend="process"
        )
        assert shared_pool.is_warm(3)

    def test_shutdown_is_idempotent_and_pool_restarts(self, graph):
        from repro.engine.parallel import shared_pool, shutdown_shared_pool

        shutdown_shared_pool()
        shutdown_shared_pool()
        assert not shared_pool.is_warm(1)
        engine = ScenarioBatchEngine(graph)
        engine.run(
            sweep_specs()[:3], sweep_measures()[:1], max_workers=2, backend="process"
        )
        assert shared_pool.is_warm(2)


class TestSweepScheduler:
    def test_direct_scheduler_run(self, graph):
        engine = ScenarioBatchEngine(graph)
        rate_matrix = engine.rate_matrix(sweep_specs()[:4])
        scheduler = SweepScheduler(
            graph, engine.template(), KrylovSettings(), max_workers=2
        )
        outcome = scheduler.run(rate_matrix)
        assert outcome.solutions.shape == (4, graph.number_of_states)
        np.testing.assert_allclose(outcome.solutions.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(outcome.status == STATUS_SOLVED)
        assert np.all(outcome.solve_seconds >= 0.0)

    def test_rejects_graph_without_coefficients(self, graph):
        from repro.spn.reachability import TangibleReachabilityGraph

        stripped = TangibleReachabilityGraph(
            net=graph.net,
            markings=graph.markings,
            initial_distribution=graph.initial_distribution,
            transitions=graph.transitions,
        )
        engine = ScenarioBatchEngine(graph)
        with pytest.raises(ValueError, match="coefficient"):
            SweepScheduler(
                stripped, engine.template(), KrylovSettings(), max_workers=2
            )


class TestRewardMatrix:
    def test_matches_scalar_measure_evaluation(self, graph):
        from repro.spn import solve_steady_state

        solution = solve_steady_state(graph)
        matrix = RewardMatrix.from_measures(graph, sweep_measures())
        values = matrix.evaluate(
            solution.probabilities[np.newaxis, :],
            graph.rate_vector[np.newaxis, :],
        )
        for column, measure in enumerate(sweep_measures()):
            assert agree(values[0, column], solution.measure(measure))

    def test_throughput_without_coefficients_unsupported(self, graph):
        from repro.spn.reachability import TangibleReachabilityGraph

        stripped = TangibleReachabilityGraph(
            net=graph.net,
            markings=graph.markings,
            initial_distribution=graph.initial_distribution,
            transitions=graph.transitions,
        )
        with pytest.raises(UnsupportedMeasure):
            RewardMatrix.from_measures(stripped, [ThroughputMeasure("r", "REPAIR")])

    def test_solution_block_shape_validated(self, graph):
        matrix = RewardMatrix.from_measures(graph, sweep_measures()[:1])
        with pytest.raises(ValueError):
            matrix.evaluate(np.zeros((2, 3)))


def _tagged_sleep(seconds):
    time.sleep(seconds)
    return seconds


class TestTaggedSubmission:
    """Mixed generate/solve task tagging on the persistent pool."""

    def test_inflight_counts_per_kind(self):
        from repro.engine.parallel import shared_pool

        generate = shared_pool.submit("generate", 1, _tagged_sleep, 0.2)
        solve = shared_pool.submit("solve", 1, _tagged_sleep, 0.0)
        assert shared_pool.inflight("generate") >= 1
        assert shared_pool.inflight() >= shared_pool.inflight("generate")
        assert generate.result() == 0.2
        assert solve.result() == 0.0
        for _ in range(200):  # done-callbacks fire just after result()
            if shared_pool.inflight() == 0:
                break
            time.sleep(0.01)
        assert shared_pool.inflight() == 0
        assert shared_pool.inflight("generate") == 0
        assert shared_pool.inflight("solve") == 0

    def test_unknown_kind_counts_zero(self):
        from repro.engine.parallel import shared_pool

        assert shared_pool.inflight("no-such-kind") == 0
