"""Tests for the persistent reachability-graph cache."""

import numpy as np
import pytest

from repro.engine import ScenarioBatchEngine, TRGCache, cache_key
from repro.engine import cache as cache_module
from repro.engine import faults
from repro.engine.faults import FaultPlan, FaultSpec
from repro.spn import (
    CompiledNet,
    generate_tangible_reachability_graph,
    graph_deviation,
)

from tests.spn.nets import guarded_failover, machine_repair, mm1k_queue


def graph_of(net):
    return generate_tangible_reachability_graph(CompiledNet(net))


class TestCacheKey:
    def test_key_is_deterministic(self):
        a = CompiledNet(mm1k_queue())
        b = CompiledNet(mm1k_queue())
        assert cache_key(a, 100, None) == cache_key(b, 100, None)

    def test_key_depends_on_structure(self):
        a = CompiledNet(mm1k_queue(capacity=3))
        b = CompiledNet(mm1k_queue(capacity=4))
        assert cache_key(a, 100, None) != cache_key(b, 100, None)

    def test_key_depends_on_rates_and_limits(self):
        a = CompiledNet(mm1k_queue(arrival_mean=2.0))
        b = CompiledNet(mm1k_queue(arrival_mean=3.0))
        assert cache_key(a, 100, None) != cache_key(b, 100, None)
        assert cache_key(a, 100, None) != cache_key(a, 200, None)
        assert cache_key(a, 100, None) != cache_key(a, 100, "sym")

    def test_key_depends_on_guards(self):
        a = CompiledNet(guarded_failover())
        b = CompiledNet(guarded_failover(primary_mttf=11.0))
        assert cache_key(a, 100, None) != cache_key(b, 100, None)


class TestRoundTrip:
    def test_store_then_load_is_equivalent(self, tmp_path):
        cache = TRGCache(tmp_path)
        net = CompiledNet(machine_repair(machines=5))
        graph = generate_tangible_reachability_graph(net)
        cache.store(graph, 500_000)
        loaded = cache.load(net, 500_000)
        assert loaded is not None
        assert graph_deviation(graph, loaded) == 0.0
        assert loaded.markings == graph.markings
        np.testing.assert_array_equal(loaded.edge_sources, graph.edge_sources)
        np.testing.assert_array_equal(loaded.edge_rates, graph.edge_rates)
        assert loaded.transition_names == graph.transition_names
        assert loaded.initial_distribution == graph.initial_distribution

    def test_guarded_net_round_trip(self, tmp_path):
        cache = TRGCache(tmp_path)
        net = CompiledNet(guarded_failover())
        graph = generate_tangible_reachability_graph(net)
        cache.store(graph, 100)
        assert cache.load(net, 100) is not None
        assert cache.load(net, 101) is None  # different limit, different key

    def test_miss_on_empty_cache(self, tmp_path):
        cache = TRGCache(tmp_path)
        assert cache.load(CompiledNet(mm1k_queue()), 100) is None

    def test_corrupt_entry_is_a_miss_and_is_deleted(self, tmp_path):
        cache = TRGCache(tmp_path)
        net = CompiledNet(mm1k_queue())
        graph = generate_tangible_reachability_graph(net)
        path = cache.store(graph, 100)
        path.write_bytes(b"not an npz file")
        assert cache.load(net, 100) is None
        assert not path.exists()  # bad entry evicted, next store regenerates

    def test_truncated_entry_is_a_miss_and_is_deleted(self, tmp_path):
        """Regression: a half-written zip raises BadZipFile, not OSError."""
        cache = TRGCache(tmp_path)
        net = CompiledNet(mm1k_queue())
        graph = generate_tangible_reachability_graph(net)
        path = cache.store(graph, 100)
        content = path.read_bytes()
        path.write_bytes(content[: len(content) // 2])
        assert cache.load(net, 100) is None
        assert not path.exists()

    def test_unwritable_cache_does_not_fail_the_run(self, tmp_path):
        # A regular file as path parent makes mkdir fail with an OSError
        # (permission tricks don't work when the suite runs as root).
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        engine = ScenarioBatchEngine(mm1k_queue(), cache=TRGCache(blocker / "sub"))
        with pytest.warns(UserWarning, match="could not persist"):
            graph = engine.graph()
        assert engine.graph_source == "generated"
        assert graph.number_of_states == 4


def _rewrite_entry(path, mutate):
    """Reload an entry's arrays, apply ``mutate``, and write them back.

    Writes a well-formed ``.npz`` (valid zip, valid CRCs), so only the
    sha256 payload digest can catch what ``mutate`` changed.
    """
    with np.load(path, allow_pickle=False) as data:
        arrays = {name: data[name].copy() for name in data.files}
    mutate(arrays)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


class TestIntegrityDigest:
    def test_store_embeds_payload_digest(self, tmp_path):
        cache = TRGCache(tmp_path)
        path = cache.store(graph_of(mm1k_queue()), 100)
        with np.load(path, allow_pickle=False) as data:
            assert cache_module.DIGEST_ARRAY in data.files
            digest = data[cache_module.DIGEST_ARRAY]
        assert digest.dtype == np.uint8 and digest.shape == (32,)

    def test_digest_ignores_its_own_array(self, tmp_path):
        cache = TRGCache(tmp_path)
        path = cache.store(graph_of(mm1k_queue()), 100)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        recomputed = cache_module.payload_digest(arrays)
        np.testing.assert_array_equal(arrays[cache_module.DIGEST_ARRAY], recomputed)

    def test_flipped_payload_byte_is_a_miss(self, tmp_path):
        """A valid zip with silently altered numbers must not load."""
        cache = TRGCache(tmp_path)
        net = CompiledNet(mm1k_queue())
        path = cache.store(generate_tangible_reachability_graph(net), 100)

        def corrupt(arrays):
            arrays["edge_rates"] = arrays["edge_rates"].copy()
            arrays["edge_rates"][0] += 1.0

        _rewrite_entry(path, corrupt)
        assert cache.load(net, 100) is None
        assert not path.exists()

    def test_missing_digest_is_a_miss(self, tmp_path):
        """Entries from before the digest era (format v1) do not load."""
        cache = TRGCache(tmp_path)
        net = CompiledNet(mm1k_queue())
        path = cache.store(generate_tangible_reachability_graph(net), 100)
        _rewrite_entry(path, lambda arrays: arrays.pop(cache_module.DIGEST_ARRAY))
        assert cache.load(net, 100) is None
        assert not path.exists()

    def test_missing_array_is_a_miss(self, tmp_path):
        cache = TRGCache(tmp_path)
        net = CompiledNet(mm1k_queue())
        path = cache.store(generate_tangible_reachability_graph(net), 100)
        _rewrite_entry(path, lambda arrays: arrays.pop("edge_sources"))
        assert cache.load(net, 100) is None
        assert not path.exists()

    def test_dtype_rewrite_is_a_miss(self, tmp_path):
        """Same bytes, different dtype: zip CRC passes, digest must not."""
        cache = TRGCache(tmp_path)
        net = CompiledNet(mm1k_queue())
        path = cache.store(generate_tangible_reachability_graph(net), 100)

        def retype(arrays):
            arrays["edge_sources"] = arrays["edge_sources"].astype(np.int32)

        _rewrite_entry(path, retype)
        assert cache.load(net, 100) is None
        assert not path.exists()

    def test_regeneration_after_eviction(self, tmp_path):
        """The canonical self-heal cycle: corrupt → miss → store → hit."""
        cache = TRGCache(tmp_path)
        net = CompiledNet(mm1k_queue())
        graph = generate_tangible_reachability_graph(net)
        path = cache.store(graph, 100)
        path.write_bytes(b"garbage")
        assert cache.load(net, 100) is None
        cache.store(graph, 100)
        reloaded = cache.load(net, 100)
        assert reloaded is not None
        assert graph_deviation(graph, reloaded) == 0.0


class TestInjectedCorruption:
    def test_corrupt_cache_read_fault_forces_regeneration(self, tmp_path):
        """The injected fault truncates the real file and rides the real
        corruption path: miss, eviction, regeneration, then clean hits."""
        cache = TRGCache(tmp_path)
        net = CompiledNet(mm1k_queue())
        graph = generate_tangible_reachability_graph(net)
        path = cache.store(graph, 100)
        plan = FaultPlan([FaultSpec(kind=faults.CORRUPT_CACHE_READ, count=1)])
        with faults.injected(plan):
            assert cache.load(net, 100) is None  # fault fires here
            assert not path.exists()
            cache.store(graph, 100)
            reloaded = cache.load(net, 100)  # plan exhausted: normal load
        assert plan.fired(faults.CORRUPT_CACHE_READ) == 1
        assert reloaded is not None
        assert graph_deviation(graph, reloaded) == 0.0

    def test_fault_site_pattern_can_exclude_cache(self, tmp_path):
        cache = TRGCache(tmp_path)
        net = CompiledNet(mm1k_queue())
        cache.store(generate_tangible_reachability_graph(net), 100)
        plan = FaultPlan(
            [FaultSpec(kind=faults.CORRUPT_CACHE_READ, site="something.else")]
        )
        with faults.injected(plan):
            assert cache.load(net, 100) is not None
        assert plan.fired() == 0


class TestMaintenance:
    def test_entries_and_clear(self, tmp_path):
        cache = TRGCache(tmp_path)
        cache.store(graph_of(mm1k_queue()), 100)
        cache.store(graph_of(machine_repair()), 100)
        entries = cache.entries()
        assert len(entries) == 2
        assert all(entry.size_bytes > 0 for entry in entries)
        assert cache.clear() == 2
        assert cache.entries() == []


class TestEngineIntegration:
    def test_second_engine_hits_the_cache(self, tmp_path):
        cache = TRGCache(tmp_path)
        first = ScenarioBatchEngine(mm1k_queue(), cache=cache)
        first.graph()
        assert first.graph_source == "generated"
        second = ScenarioBatchEngine(mm1k_queue(), cache=cache)
        graph = second.graph()
        assert second.graph_source == "cache"
        assert graph_deviation(first.graph(), graph) == 0.0

    def test_cached_graph_solves_bit_identically(self, tmp_path):
        cache = TRGCache(tmp_path)
        generated = ScenarioBatchEngine(machine_repair(machines=30), cache=cache)
        from_cache = ScenarioBatchEngine(machine_repair(machines=30), cache=cache)
        a = generated.solve(delays={"FAIL": 25.0}).probabilities
        b = from_cache.solve(delays={"FAIL": 25.0}).probabilities
        assert from_cache.graph_source == "cache"
        np.testing.assert_array_equal(a, b)

    def test_anonymous_canonicalizer_bypasses_cache(self, tmp_path):
        cache = TRGCache(tmp_path)
        engine = ScenarioBatchEngine(
            machine_repair(machines=3),
            cache=cache,
            canonicalize=lambda marking: marking,
        )
        engine.graph()
        assert engine.graph_source == "generated"
        assert cache.entries() == []

    def test_identified_canonicalizer_uses_cache(self, tmp_path):
        cache = TRGCache(tmp_path)

        def canonicalize(marking):
            return marking

        canonicalize.cache_id = "identity"
        first = ScenarioBatchEngine(
            machine_repair(machines=3), cache=cache, canonicalize=canonicalize
        )
        first.graph()
        assert len(cache.entries()) == 1
        second = ScenarioBatchEngine(
            machine_repair(machines=3), cache=cache, canonicalize=canonicalize
        )
        second.graph()
        assert second.graph_source == "cache"

    def test_no_cache_by_default(self):
        engine = ScenarioBatchEngine(mm1k_queue())
        engine.graph()
        assert engine.graph_source == "generated"


class TestRunnerIntegration:
    def _runner(self, tmp_path, **overrides):
        from repro.casestudy import DistributedSweepRunner
        from repro.core import CaseStudyParameters

        return DistributedSweepRunner(
            parameters=CaseStudyParameters(required_running_vms=1),
            machines_per_datacenter=1,
            cache_dir=str(tmp_path),
            **overrides,
        )

    def test_repeat_runner_loads_from_cache(self, tmp_path):
        first = self._runner(tmp_path)
        first.graph()
        assert first.engine().graph_source == "generated"
        second = self._runner(tmp_path)
        second.graph()
        assert second.engine().graph_source == "cache"
        assert second.graph().markings == first.graph().markings

    def test_use_cache_false_bypasses(self, tmp_path):
        runner = self._runner(tmp_path, use_cache=False)
        runner.graph()
        assert runner.engine().graph_source == "generated"
        assert TRGCache(tmp_path).entries() == []


def _hammer_store(directory, machines, iterations):
    """Worker-side: store the same entry over and over (two-writer stress)."""
    net = CompiledNet(machine_repair(machines=machines))
    graph = generate_tangible_reachability_graph(net)
    cache = TRGCache(directory)
    for _ in range(iterations):
        cache.store(graph, 500_000)
    return iterations


class TestConcurrentWrites:
    def test_two_writer_stress_never_tears_the_entry(self, tmp_path):
        """Concurrent stores of one key must never leave a torn entry.

        ``TRGCache.store`` writes to a temp file and ``os.replace``s it into
        place, so a reader racing two writers sees either the old complete
        entry or the new complete entry — never a partial file (which would
        read back as a miss or corrupt payload).
        """
        from concurrent.futures import ProcessPoolExecutor

        net = CompiledNet(machine_repair(machines=5))
        reference = generate_tangible_reachability_graph(net)
        cache = TRGCache(tmp_path)
        cache.store(reference, 500_000)
        with ProcessPoolExecutor(max_workers=2) as pool:
            writers = [
                pool.submit(_hammer_store, str(tmp_path), 5, 25) for _ in range(2)
            ]
            reads = 0
            while not all(writer.done() for writer in writers):
                loaded = cache.load(net, 500_000)
                assert loaded is not None, "reader saw a torn/missing entry"
                assert graph_deviation(reference, loaded) == 0.0
                reads += 1
            assert [writer.result() for writer in writers] == [25, 25]
        assert reads > 0
        final = cache.load(net, 500_000)
        assert final is not None
        assert graph_deviation(reference, final) == 0.0
