"""Tests for the structure-grouped scenario-grid orchestrator."""

import json

import pytest

from repro.casestudy.grid import CaseStudyGrid, evaluate_grid, scenario_case
from repro.core import CaseStudyParameters
from repro.core.scenarios import (
    CITY_PAIRS,
    DistributedScenario,
    MultiDataCenterScenario,
    SingleDataCenterScenario,
)
from repro.engine import (
    CanonicalizerRef,
    GridCase,
    ScenarioBatchEngine,
    ScenarioGridOrchestrator,
    TRGCache,
)
from repro.network.geo import BRASILIA, RECIFE, RIO_DE_JANEIRO
from repro.spn.enabling import CompiledNet
from repro.spn.rewards import ProbabilityMeasure
from repro.spn.validation import validate

REDUCED = CaseStudyParameters(required_running_vms=1)


def reduced_case(scenario, **kwargs):
    return scenario_case(scenario, parameters=REDUCED, **kwargs)


def distributed(alpha=0.35, years=100.0, machines=1, pair=0):
    first, second = CITY_PAIRS[pair]
    return DistributedScenario(
        first,
        second,
        alpha=alpha,
        disaster_mean_time_years=years,
        machines_per_datacenter=machines,
    )


class TestGrouping:
    def group_key(self, case):
        orchestrator = ScenarioGridOrchestrator()
        canonical_id = None
        if case.canonicalizer is not None:
            canonical_id = case.canonicalizer.build().cache_id
        return orchestrator.group_key(CompiledNet(case.net), canonical_id)

    def test_rate_only_differences_share_a_group(self):
        # Different α, disaster mean time AND city pair: all pure rate
        # changes of one structure.
        keys = {
            self.group_key(reduced_case(distributed(alpha=0.35))),
            self.group_key(reduced_case(distributed(alpha=0.45))),
            self.group_key(reduced_case(distributed(years=300.0))),
            self.group_key(reduced_case(distributed(pair=3))),
        }
        assert len(keys) == 1

    def test_machine_counts_split_groups(self):
        assert self.group_key(reduced_case(distributed(machines=1))) != self.group_key(
            reduced_case(distributed(machines=2))
        )

    def test_backup_ablation_splits_groups(self):
        with_backup = MultiDataCenterScenario(
            locations=CITY_PAIRS[0], machines_per_datacenter=1
        )
        without = MultiDataCenterScenario(
            locations=CITY_PAIRS[0], machines_per_datacenter=1, has_backup_server=False
        )
        assert self.group_key(reduced_case(with_backup)) != self.group_key(
            reduced_case(without)
        )

    def test_l_threshold_splits_groups(self):
        base = MultiDataCenterScenario(locations=CITY_PAIRS[0], machines_per_datacenter=1)
        stricter = MultiDataCenterScenario(
            locations=CITY_PAIRS[0], machines_per_datacenter=1, minimum_operational_pms=2
        )
        assert self.group_key(reduced_case(base)) != self.group_key(
            reduced_case(stricter)
        )

    def test_canonicalizer_identity_part_of_group(self):
        lumped = reduced_case(distributed(machines=2))
        unlumped = reduced_case(distributed(machines=2), symmetry_reduction=False)
        assert lumped.canonicalizer is not None and unlumped.canonicalizer is None
        assert self.group_key(lumped) != self.group_key(unlumped)

    def test_duplicate_names_rejected(self):
        case = reduced_case(distributed())
        with pytest.raises(ValueError):
            ScenarioGridOrchestrator().run([case, case])


class TestCanonicalizerRef:
    def test_ref_rebuilds_model_canonicalizer(self):
        model = distributed(machines=2).build_model(REDUCED)
        reference = model.symmetry_canonicalizer()
        rebuilt = CanonicalizerRef(
            "repro.symmetry.canonicalize:build_canonicalizer",
            (model.symmetry_spec(),),
        ).build()
        assert rebuilt.cache_id == reference.cache_id
        marking = tuple(range(len(model.build().place_names)))
        assert rebuilt(marking) == reference(marking)

    def test_legacy_groups_factory_still_builds(self):
        # Back-compat: the pre-spec factory keeps working (its own cache-id
        # namespace, so legacy and spec-built graphs never collide).
        model = distributed(machines=2).build_model(REDUCED)
        legacy = CanonicalizerRef(
            "repro.core.cloud_model:pm_symmetry_canonicalizer",
            (model.symmetry_groups(),),
        ).build()
        reference = model.symmetry_canonicalizer()
        assert legacy.cache_id.startswith("pm-symmetry:")
        marking = tuple(range(len(model.build().place_names)))
        assert legacy(marking) == reference(marking)

    def test_ref_survives_pickling(self):
        import pickle

        model = distributed(machines=2).build_model(REDUCED)
        ref = CanonicalizerRef(
            "repro.symmetry.canonicalize:build_canonicalizer",
            (model.symmetry_spec(),),
        )
        clone = pickle.loads(pickle.dumps(ref))
        assert clone.build().cache_id == ref.build().cache_id

    def test_invalid_factory_rejected(self):
        with pytest.raises(ValueError):
            CanonicalizerRef("no-colon-here").build()


class TestOrchestratedRun:
    @pytest.fixture(scope="class")
    def mixed_outcome_and_cases(self):
        cases = [
            reduced_case(distributed(alpha=0.35)),
            reduced_case(distributed(alpha=0.45)),
            reduced_case(distributed(pair=1, years=300.0)),
            reduced_case(
                SingleDataCenterScenario(machines=1, label="single-1", parameters=REDUCED)
            ),
            reduced_case(
                SingleDataCenterScenario(machines=2, label="single-2", parameters=REDUCED)
            ),
        ]
        outcome = ScenarioGridOrchestrator().run(cases)
        return outcome, cases

    def test_results_preserve_input_order_and_grouping(self, mixed_outcome_and_cases):
        outcome, cases = mixed_outcome_and_cases
        assert [row.name for row in outcome.results] == [case.name for case in cases]
        assert len(outcome.groups) == 3
        two_dc = outcome.results[0].group
        assert outcome.results[1].group == two_dc == outcome.results[2].group
        assert outcome.results[3].group != outcome.results[4].group != two_dc

    def test_grid_matches_per_scenario_serial_evaluation(self, mixed_outcome_and_cases):
        """The acceptance bar: orchestration must not change any number."""
        outcome, cases = mixed_outcome_and_cases
        for case, row in zip(cases, outcome.results):
            engine = ScenarioBatchEngine(
                case.net,
                canonicalize=(
                    case.canonicalizer.build() if case.canonicalizer else None
                ),
            )
            solution = engine.solve(rates=case.full_rates())
            reference = solution.probability(case.measures[0].expression)
            assert abs(reference - row.value("availability")) < 1e-12

    def test_provenance_recorded(self, mixed_outcome_and_cases):
        outcome, _ = mixed_outcome_and_cases
        for group in outcome.groups:
            assert group.graph_source in {"generated", "generated:pool", "cache"}
            assert group.number_of_states > 0
            assert group.backend in {"serial", "thread", "process"}


class TestCacheAndShards:
    def test_second_run_hits_cache_and_agrees(self, tmp_path):
        cases = [
            reduced_case(distributed(alpha=0.35)),
            reduced_case(distributed(alpha=0.45)),
        ]
        cache = TRGCache(tmp_path / "cache")
        first = ScenarioGridOrchestrator(cache=cache).run(cases)
        second = ScenarioGridOrchestrator(cache=cache).run(cases)
        assert all(
            group.graph_source in {"generated", "generated:pool"}
            for group in first.groups
        )
        assert all(group.cache_hit for group in second.groups)
        for a, b in zip(first.results, second.results):
            assert a.measures == b.measures

    def test_shards_stream_every_row(self, tmp_path):
        cases = [
            reduced_case(distributed(alpha=0.35)),
            reduced_case(distributed(alpha=0.45)),
            reduced_case(
                SingleDataCenterScenario(machines=1, label="single-1", parameters=REDUCED)
            ),
        ]
        outcome = ScenarioGridOrchestrator(
            shard_directory=tmp_path / "shards", shard_size=2
        ).run(cases)
        assert len(outcome.shard_paths) == 2
        records = []
        for path in outcome.shard_paths:
            with open(path) as handle:
                records.extend(json.loads(line) for line in handle)
        assert sorted(record["index"] for record in records) == [0, 1, 2]
        by_index = {record["index"]: record for record in records}
        for index, row in enumerate(outcome.results):
            assert by_index[index]["measures"] == row.measures
            assert by_index[index]["group"] == row.group

    def test_rate_only_variants_hit_the_cache_across_runs(self, tmp_path):
        """A new rate point (new α) must not regenerate the shared structure."""
        cache = TRGCache(tmp_path / "cache")
        first = ScenarioGridOrchestrator(cache=cache).run(
            [reduced_case(distributed(alpha=0.35))]
        )
        assert first.groups[0].graph_source in {"generated", "generated:pool"}
        second = ScenarioGridOrchestrator(cache=cache).run(
            [reduced_case(distributed(alpha=0.45)), reduced_case(distributed(years=300.0))]
        )
        assert [group.graph_source for group in second.groups] == ["cache"]
        # Values still match a fresh serial evaluation of the new rate point.
        case = reduced_case(distributed(alpha=0.45))
        engine = ScenarioBatchEngine(case.net)
        reference = engine.solve(rates=case.full_rates()).probability(
            case.measures[0].expression
        )
        assert abs(reference - second.results[0].value("availability")) < 1e-12

    def test_rerun_removes_stale_shards(self, tmp_path):
        directory = tmp_path / "shards"
        big = [
            reduced_case(distributed(alpha=0.35)),
            reduced_case(distributed(alpha=0.45)),
            reduced_case(distributed(years=300.0)),
        ]
        ScenarioGridOrchestrator(shard_directory=directory, shard_size=1).run(big)
        assert len(list(directory.glob("grid-shard-*.jsonl"))) == 3
        small = ScenarioGridOrchestrator(
            shard_directory=directory, shard_size=1
        ).run(big[:1])
        assert len(list(directory.glob("grid-shard-*.jsonl"))) == 1
        assert len(small.shard_paths) == 1

    def test_concurrent_generation_on_pool(self, tmp_path):
        # Two distinct structures, two generation workers: both graphs must
        # come back through the cache transport bit-identically.
        cases = [
            reduced_case(distributed(alpha=0.35)),
            reduced_case(
                SingleDataCenterScenario(machines=1, label="single-1", parameters=REDUCED)
            ),
        ]
        pooled = ScenarioGridOrchestrator(generation_workers=2).run(cases)
        serial = ScenarioGridOrchestrator(generation_workers=1).run(cases)
        for a, b in zip(pooled.results, serial.results):
            assert a.measures == b.measures


class TestMergedMeasures:
    def test_same_name_different_expressions_in_one_group(self):
        scenario = distributed()
        model = scenario.build_model(REDUCED)
        net = model.build()
        loose = GridCase(
            name="k1",
            net=net,
            measures=(
                ProbabilityMeasure(
                    "availability", model.availability_expression(required_running_vms=1)
                ),
            ),
        )
        strict = GridCase(
            name="k2",
            net=net,
            measures=(
                ProbabilityMeasure(
                    "availability", model.availability_expression(required_running_vms=2)
                ),
            ),
        )
        outcome = ScenarioGridOrchestrator().run([loose, strict])
        assert len(outcome.groups) == 1
        assert outcome.result("k1").value("availability") > outcome.result("k2").value(
            "availability"
        )


class TestMultiDataCenterTopologies:
    def test_three_datacenter_mesh_passes_structural_validation(self):
        scenario = MultiDataCenterScenario(
            locations=(RIO_DE_JANEIRO, BRASILIA, RECIFE), machines_per_datacenter=1
        )
        net = scenario.build_model(REDUCED).build()
        issues = validate(net)
        assert not issues
        names = set(net.transition_names)
        for i, j in ((1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2)):
            assert f"TRI_{i}{j}" in names
            assert f"TBE_{i}{j}" in names

    def test_grid_axes_prune_single_site_scenarios(self):
        grid = CaseStudyGrid(
            city_sets=((RIO_DE_JANEIRO, BRASILIA), (RIO_DE_JANEIRO,)),
            alphas=(0.35, 0.45),
            disaster_years=(100.0,),
            machines_per_datacenter=(1,),
            backup=(True, False),
        )
        scenarios = grid.scenarios()
        # 2-DC: 2 alphas x 2 backup = 4; single site: 1 (alpha/backup pruned).
        assert len(scenarios) == 5
        labels = [s.label for s in scenarios]
        assert len(set(labels)) == 5

    def test_evaluate_grid_end_to_end(self, tmp_path):
        grid = CaseStudyGrid(
            city_sets=((RIO_DE_JANEIRO, BRASILIA), (RIO_DE_JANEIRO,)),
            machines_per_datacenter=(1,),
        )
        outcome = evaluate_grid(
            grid.scenarios(),
            parameters=REDUCED,
            use_cache=True,
            cache_dir=str(tmp_path / "cache"),
        )
        assert len(outcome.results) == 2
        assert all(0.9 < row.value("availability") <= 1.0 for row in outcome.results)

    def test_evaluate_grid_shares_nets_across_rate_variants(self):
        grid = CaseStudyGrid(
            city_sets=((RIO_DE_JANEIRO, BRASILIA), (RIO_DE_JANEIRO, RECIFE)),
            alphas=(0.35, 0.45),
            machines_per_datacenter=(1,),
        )
        outcome = evaluate_grid(grid.scenarios(), parameters=REDUCED, use_cache=False)
        # Four rate-only variants of one structure: one group, one state
        # space — and every value still matches its own serial evaluation.
        assert len(outcome.groups) == 1
        assert outcome.groups[0].cases == 4
        for scenario, row in zip(grid.scenarios(), outcome.results):
            case = reduced_case(scenario)
            engine = ScenarioBatchEngine(case.net)
            reference = engine.solve(rates=case.full_rates()).probability(
                case.measures[0].expression
            )
            assert abs(reference - row.value("availability")) < 1e-12


class TestPipeline:
    """Work-stealing generate→solve pipeline vs the two-phase barrier."""

    def cases(self):
        return [
            reduced_case(distributed(alpha=0.35)),
            reduced_case(distributed(alpha=0.45)),
            reduced_case(
                SingleDataCenterScenario(machines=1, label="single-1", parameters=REDUCED)
            ),
            reduced_case(
                SingleDataCenterScenario(machines=2, label="single-2", parameters=REDUCED)
            ),
        ]

    def test_pipeline_matches_barrier_below_1e_12(self, tmp_path):
        cases = self.cases()
        pipelined = ScenarioGridOrchestrator(
            jobs=2, shard_directory=tmp_path / "pipe"
        ).run(cases)
        barrier = ScenarioGridOrchestrator(
            pipeline=False, shard_directory=tmp_path / "barrier"
        ).run(cases)
        assert pipelined.pipelined and not barrier.pipelined
        assert [row.name for row in pipelined.results] == [
            row.name for row in barrier.results
        ]
        for a, b in zip(pipelined.results, barrier.results):
            for name, value in a.measures.items():
                assert abs(value - b.measures[name]) < 1e-12

        def shard_records(outcome):
            records = {}
            for path in outcome.shard_paths:
                with open(path) as handle:
                    for line in handle:
                        record = json.loads(line)
                        records[record["index"]] = record
            return records

        pipe_records = shard_records(pipelined)
        barrier_records = shard_records(barrier)
        assert set(pipe_records) == set(barrier_records) == set(range(len(cases)))
        for index in pipe_records:
            assert pipe_records[index]["measures"] == barrier_records[index]["measures"]
            assert pipe_records[index]["name"] == barrier_records[index]["name"]

    def test_single_core_budget_degrades_to_barrier(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 1
        )
        outcome = ScenarioGridOrchestrator().run(self.cases()[:3])
        assert not outcome.pipelined  # no deadlock, barrier path ran
        assert len(outcome.results) == 3
        assert all(row.measures for row in outcome.results)

    def test_forced_pipeline_records_timeline(self):
        outcome = ScenarioGridOrchestrator(jobs=2).run(self.cases()[:3])
        assert outcome.pipelined
        for group in outcome.groups:
            assert group.solve_started_at >= 0.0
            assert group.generate_finished_at >= 0.0
            assert group.solve_started_at >= group.generate_finished_at - 1e-9
            timeline = group.timeline()
            assert set(timeline) == {
                "generate_finished_at",
                "solve_started_at",
                "queue_wait_seconds",
                "generate_seconds",
                "solve_seconds",
            }

    def test_pipeline_reports_groups_in_first_appearance_order(self):
        cases = self.cases()
        pipelined = ScenarioGridOrchestrator(jobs=2).run(cases)
        barrier = ScenarioGridOrchestrator(pipeline=False).run(cases)
        assert [g.key for g in pipelined.groups] == [g.key for g in barrier.groups]

    def test_progress_callback_receives_lines(self):
        lines = []
        ScenarioGridOrchestrator(jobs=2, log_callback=lines.append).run(
            self.cases()[:3]
        )
        assert lines
        assert any("groups done" in line for line in lines)

    def test_broken_pool_submission_falls_back_in_process(self, monkeypatch):
        from pickle import PicklingError

        from repro.engine import parallel as parallel_module

        def refuse(kind, workers, fn, /, *args, **kwargs):
            raise PicklingError("nope")

        monkeypatch.setattr(parallel_module.shared_pool, "submit", refuse)
        cases = self.cases()[:3]
        with pytest.warns(UserWarning, match="generating in-process"):
            outcome = ScenarioGridOrchestrator(jobs=2).run(cases)
        assert outcome.pipelined
        barrier = ScenarioGridOrchestrator(pipeline=False).run(cases)
        for a, b in zip(outcome.results, barrier.results):
            for name, value in a.measures.items():
                assert abs(value - b.measures[name]) < 1e-12
        assert all(
            group.graph_source in {"generated", "cache"} for group in outcome.groups
        )


class TestGridDedupe:
    """Cross-case stationary-vector sharing inside one structure group."""

    def threshold_cases(self):
        scenario = distributed()
        model = scenario.build_model(REDUCED)
        net = model.build()
        return [
            GridCase(
                name=f"k{required}",
                net=net,
                measures=(
                    ProbabilityMeasure(
                        "availability",
                        model.availability_expression(required_running_vms=required),
                    ),
                ),
            )
            for required in (1, 2, 3)
        ]

    def test_rate_identical_cases_solve_once(self):
        outcome = ScenarioGridOrchestrator(pipeline=False).run(self.threshold_cases())
        assert len(outcome.groups) == 1
        assert outcome.deduped_cases == 2
        assert outcome.groups[0].deduped_cases == 2
        sources = [row.solve_source for row in outcome.results]
        assert sources == ["solved", "deduped", "deduped"]

    def test_deduped_measures_stay_per_case(self):
        outcome = ScenarioGridOrchestrator(pipeline=False).run(self.threshold_cases())
        values = [row.value("availability") for row in outcome.results]
        assert values[0] > values[1] > values[2]  # stricter k, lower availability

    def test_dedupe_off_matches_dedupe_on(self):
        cases = self.threshold_cases()
        on = ScenarioGridOrchestrator(pipeline=False).run(cases)
        off = ScenarioGridOrchestrator(pipeline=False, dedupe=False).run(cases)
        assert off.deduped_cases == 0
        assert all(row.solve_source == "solved" for row in off.results)
        for a, b in zip(on.results, off.results):
            assert abs(a.value("availability") - b.value("availability")) < 1e-12

    def test_dedupe_through_the_pipeline(self):
        # Two structure groups, one of which has a rate-identical pair.
        cases = self.threshold_cases()[:2] + [
            reduced_case(
                SingleDataCenterScenario(machines=1, label="single-1", parameters=REDUCED)
            )
        ]
        outcome = ScenarioGridOrchestrator(jobs=2).run(cases)
        assert outcome.pipelined
        assert outcome.deduped_cases == 1
        assert outcome.result("k2").solve_source == "deduped"

    def test_deduped_rows_survive_shards(self, tmp_path):
        outcome = ScenarioGridOrchestrator(
            pipeline=False, shard_directory=tmp_path
        ).run(self.threshold_cases())
        records = []
        for path in outcome.shard_paths:
            with open(path) as handle:
                records.extend(json.loads(line) for line in handle)
        by_name = {record["name"]: record for record in records}
        assert by_name["k1"]["solve_source"] == "solved"
        assert by_name["k2"]["solve_source"] == "deduped"
