"""Self-healing grid execution under injected faults.

Chaos tests of the robustness layer: deterministic fault plans
(:mod:`repro.engine.faults`) kill pool workers, poison tasks, hang
generations and corrupt cache entries mid-grid, and the assertions check
the orchestrator heals — bit-identical results (Δ < 1e-12 against a
fault-free run), rebuilds recorded in provenance, quarantined cases
surfaced as structured failures instead of aborts, and checkpoint shards
that resume exactly the missing work.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.casestudy.grid import scenario_case
from repro.core import CaseStudyParameters
from repro.core.scenarios import CITY_PAIRS, DistributedScenario, SingleDataCenterScenario
from repro.engine import (
    KrylovConvergenceError,
    KrylovSettings,
    ReusableSolver,
    ScenarioBatchEngine,
    ScenarioGridOrchestrator,
)
from repro.engine import faults
from repro.engine.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.engine.grid import load_checkpoint
from repro.engine.parallel import leaked_segments

TOLERANCE = 1e-12
REDUCED = CaseStudyParameters(required_running_vms=1)

#: Tight backoffs keep the retry machinery honest without slowing the suite.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.01, max_backoff_seconds=0.05)


def reduced_case(scenario, **kwargs):
    return scenario_case(scenario, parameters=REDUCED, **kwargs)


def distributed(alpha=0.35, years=100.0, machines=1, pair=0):
    first, second = CITY_PAIRS[pair]
    return DistributedScenario(
        first,
        second,
        alpha=alpha,
        disaster_mean_time_years=years,
        machines_per_datacenter=machines,
    )


def grid_cases():
    """Four scenarios over two structure groups (mixed shapes)."""
    return [
        reduced_case(distributed(alpha=0.35)),
        reduced_case(distributed(alpha=0.45)),
        reduced_case(
            SingleDataCenterScenario(machines=1, label="single-1", parameters=REDUCED)
        ),
        reduced_case(
            SingleDataCenterScenario(machines=2, label="single-2", parameters=REDUCED)
        ),
    ]


@pytest.fixture(scope="module")
def reference():
    """Fault-free availability per case name, solved once per module."""
    outcome = ScenarioGridOrchestrator(jobs=2, retry=FAST_RETRY).run(grid_cases())
    assert not outcome.partial
    return {row.name: row.value("availability") for row in outcome.results}


def assert_matches_reference(outcome, reference):
    assert len(outcome.results) == len(reference)
    for row in outcome.results:
        assert abs(row.value("availability") - reference[row.name]) < TOLERANCE


class TestWorkerKillRecovery:
    def test_sigkilled_worker_mid_grid_heals_bit_identically(self, reference):
        """The S4 scenario: SIGKILL a pool worker during generation; the
        grid must complete within 1e-12 of the fault-free run and record
        the pool rebuild in provenance."""
        plan = FaultPlan([FaultSpec(kind=faults.WORKER_KILL, site="generate")])
        with faults.injected(plan):
            outcome = ScenarioGridOrchestrator(jobs=2, retry=FAST_RETRY).run(
                grid_cases()
            )
        assert plan.fired(faults.WORKER_KILL) == 1  # the kill actually happened
        assert not outcome.partial
        assert outcome.pool_rebuilds >= 1  # rebuild recorded in provenance
        assert_matches_reference(outcome, reference)

    def test_repeated_kills_stay_within_restart_budget(self, reference):
        """Two kills, budget three: the rebuilds are absorbed, results exact.

        Both doomed tasks may land on the same pool epoch and die in one
        breakage, so the provenance floor is one rebuild, not two.
        """
        plan = FaultPlan([FaultSpec(kind=faults.WORKER_KILL, site="generate", count=2)])
        with faults.injected(plan):
            outcome = ScenarioGridOrchestrator(jobs=2, retry=FAST_RETRY).run(
                grid_cases()
            )
        assert plan.fired(faults.WORKER_KILL) == 2
        assert not outcome.partial
        assert outcome.pool_rebuilds >= 1
        assert_matches_reference(outcome, reference)


class TestTaskExceptionRetry:
    def test_transient_generation_fault_is_retried_to_success(self, reference):
        plan = FaultPlan([FaultSpec(kind=faults.TASK_EXCEPTION, site="generate")])
        with faults.injected(plan), pytest.warns(UserWarning, match="retrying"):
            outcome = ScenarioGridOrchestrator(jobs=2, retry=FAST_RETRY).run(
                grid_cases()
            )
        assert not outcome.partial
        assert max(report.generate_attempts for report in outcome.groups) >= 2
        assert_matches_reference(outcome, reference)

    def test_transient_solve_fault_is_retried_to_success(self, reference):
        plan = FaultPlan([FaultSpec(kind=faults.TASK_EXCEPTION, site="solve.group")])
        with faults.injected(plan):
            outcome = ScenarioGridOrchestrator(jobs=2, retry=FAST_RETRY).run(
                grid_cases()
            )
        assert not outcome.partial
        assert max(report.solve_attempts for report in outcome.groups) == 2
        assert_matches_reference(outcome, reference)


class TestQuarantine:
    def test_persistent_generation_failure_quarantines_not_aborts(
        self, reference, tmp_path
    ):
        """A group whose generation always fails lands in ``failures`` as a
        structured record; every other group still solves exactly."""
        plan = FaultPlan(
            [FaultSpec(kind=faults.TASK_EXCEPTION, site="generate*", count=1000)]
        )
        with faults.injected(plan), pytest.warns(UserWarning):
            outcome = ScenarioGridOrchestrator(
                jobs=2, retry=FAST_RETRY, shard_directory=tmp_path
            ).run(grid_cases())
        assert outcome.partial
        assert not outcome.results  # every group's generation was poisoned
        assert set(outcome.failed_cases()) == {case.name for case in grid_cases()}
        for record in outcome.failures:
            assert record.stage == "generate"
            assert record.attempts >= 1 + FAST_RETRY.max_retries
            assert record.error_type == "InjectedFaultError"
        failures_file = tmp_path / "grid-failures.jsonl"
        assert failures_file.exists()
        documents = [
            json.loads(line) for line in failures_file.read_text().splitlines()
        ]
        assert {document["stage"] for document in documents} == {"generate"}

    def test_persistent_solve_failure_quarantines_one_group(self, reference):
        plan = FaultPlan(
            [FaultSpec(kind=faults.TASK_EXCEPTION, site="solve.group", count=1000)]
        )
        cases = grid_cases()
        with faults.injected(plan):
            outcome = ScenarioGridOrchestrator(jobs=2, retry=FAST_RETRY).run(cases)
        assert outcome.partial
        assert not outcome.results
        failed = set(outcome.failed_cases())
        assert failed == {case.name for case in cases}
        for record in outcome.failures:
            assert record.stage == "solve"
            assert record.attempts == 1 + FAST_RETRY.max_retries

    def test_quarantine_then_clean_resume_completes_the_grid(
        self, reference, tmp_path
    ):
        """Failed cases are never checkpointed, so a clean re-run with
        ``resume`` re-dispatches exactly the quarantined work."""
        # ``after=1`` spares the first group's generation (submitted first,
        # in first-appearance order); every later generation attempt — pool
        # retries and the in-process finals — is poisoned, quarantining the
        # remaining groups.
        plan = FaultPlan(
            [FaultSpec(kind=faults.TASK_EXCEPTION, site="generate*", after=1, count=1000)]
        )
        cases = grid_cases()
        with faults.injected(plan), pytest.warns(UserWarning):
            first = ScenarioGridOrchestrator(
                jobs=2, retry=FAST_RETRY, shard_directory=tmp_path
            ).run(cases)
        assert first.partial
        completed = {row.name for row in first.results}
        quarantined = set(first.failed_cases())
        assert completed and quarantined
        assert completed | quarantined == {case.name for case in cases}

        resumed = ScenarioGridOrchestrator(
            jobs=2, retry=FAST_RETRY, shard_directory=tmp_path, resume=True
        ).run(cases)
        assert not resumed.partial
        assert resumed.restored_cases == len(completed)
        sources = {row.name: row.solve_source for row in resumed.results}
        for name in completed:
            assert sources[name] == "checkpoint"
        for name in quarantined:
            assert sources[name] != "checkpoint"
        assert_matches_reference(resumed, reference)


class TestWatchdog:
    def test_hung_generation_is_killed_and_redispatched(self, reference):
        plan = FaultPlan(
            [FaultSpec(kind=faults.SLOW_TASK, site="generate", delay_seconds=30.0)]
        )
        policy = RetryPolicy(
            max_retries=2,
            backoff_seconds=0.01,
            max_backoff_seconds=0.05,
            generate_deadline_seconds=1.0,
        )
        with faults.injected(plan):
            outcome = ScenarioGridOrchestrator(jobs=2, retry=policy).run(grid_cases())
        assert plan.fired(faults.SLOW_TASK) == 1
        assert outcome.watchdog_kills >= 1
        assert outcome.pool_rebuilds >= 1
        assert not outcome.partial
        assert_matches_reference(outcome, reference)


class TestCheckpointResume:
    def run_checkpointed(self, directory, cases, resume=False):
        return ScenarioGridOrchestrator(
            jobs=2,
            retry=FAST_RETRY,
            shard_directory=directory,
            shard_size=1,
            resume=resume,
        ).run(cases)

    def test_full_checkpoint_restores_every_case(self, reference, tmp_path):
        cases = grid_cases()
        first = self.run_checkpointed(tmp_path, cases)
        assert len(first.shard_paths) == len(cases)  # shard_size=1
        resumed = self.run_checkpointed(tmp_path, grid_cases(), resume=True)
        assert resumed.restored_cases == len(cases)
        assert all(row.solve_source == "checkpoint" for row in resumed.results)
        assert [row.name for row in resumed.results] == [case.name for case in cases]
        # JSON round-trips floats exactly: restored values are bit-identical.
        for row in resumed.results:
            assert row.value("availability") == reference[row.name]

    def test_resume_resolves_only_the_missing_case(self, reference, tmp_path):
        cases = grid_cases()
        self.run_checkpointed(tmp_path, cases)
        # Drop the shard holding grid index 2 (single-1): exactly that case
        # must be re-dispatched, everything else restored.
        victim = None
        for path in sorted(tmp_path.glob("grid-shard-*.jsonl")):
            record = json.loads(path.read_text().splitlines()[0])
            if record["index"] == 2:
                victim = record["name"]
                path.unlink()
        assert victim == "single-1"
        resumed = self.run_checkpointed(tmp_path, grid_cases(), resume=True)
        assert resumed.restored_cases == len(cases) - 1
        sources = {row.name: row.solve_source for row in resumed.results}
        assert sources.pop(victim) in {"solved", "deduped"}
        assert set(sources.values()) == {"checkpoint"}
        assert_matches_reference(resumed, reference)
        # The re-solved case was appended to a fresh shard after the kept ones.
        checkpoint = load_checkpoint(tmp_path)
        assert set(checkpoint) == {case.name for case in cases}

    def test_resume_against_a_different_grid_warns_and_matches_by_name(
        self, reference, tmp_path
    ):
        self.run_checkpointed(tmp_path, grid_cases())
        shrunk = grid_cases()[:2]
        with pytest.warns(UserWarning, match="different grid"):
            resumed = self.run_checkpointed(tmp_path, shrunk, resume=True)
        assert resumed.restored_cases == 2
        assert all(row.solve_source == "checkpoint" for row in resumed.results)

    def test_resume_requires_a_shard_directory(self):
        with pytest.raises(ValueError, match="shard_directory"):
            ScenarioGridOrchestrator(resume=True)

    def test_load_checkpoint_skips_torn_and_alien_lines(self, tmp_path):
        shard = tmp_path / "grid-shard-0000.jsonl"
        shard.write_text(
            "\n".join(
                [
                    json.dumps({"name": "good", "index": 0, "measures": {"a": 0.5}}),
                    '{"name": "torn", "measur',  # killed mid-write
                    json.dumps(["not", "a", "record"]),
                    json.dumps({"name": "rateless", "measures": "not-a-dict"}),
                    "",
                ]
            )
        )
        checkpoint = load_checkpoint(tmp_path)
        assert set(checkpoint) == {"good"}
        assert checkpoint["good"]["measures"] == {"a": 0.5}

    def test_later_shards_win_on_duplicate_names(self, tmp_path):
        (tmp_path / "grid-shard-0000.jsonl").write_text(
            json.dumps({"name": "case", "measures": {"a": 0.1}}) + "\n"
        )
        (tmp_path / "grid-shard-0001.jsonl").write_text(
            json.dumps({"name": "case", "measures": {"a": 0.2}}) + "\n"
        )
        assert load_checkpoint(tmp_path)["case"]["measures"] == {"a": 0.2}


class TestKrylovConvergenceFailure:
    """S3: GMRES non-convergence surfaces as a typed, indexed error."""

    def solver_and_rates(self):
        engine = ScenarioBatchEngine(distributed().build_model(REDUCED).build())
        graph = engine.graph()
        return (
            ReusableSolver(engine.template(), KrylovSettings()),
            np.asarray(graph.edge_rates, dtype=np.float64),
            graph,
        )

    def stall_gmres(self, monkeypatch):
        from repro.engine import krylov as krylov_module

        def stalled(system, rhs, **kwargs):
            return np.zeros(system.shape[0]), 1  # maxiter exhausted

        monkeypatch.setattr(krylov_module.sparse_linalg, "gmres", stalled)

    def test_solve_krylov_raises_with_scenario_context(self, monkeypatch):
        solver, edge_rates, _ = self.solver_and_rates()
        self.stall_gmres(monkeypatch)
        with pytest.raises(KrylovConvergenceError) as info:
            solver.solve_krylov(edge_rates, scenario_index=7)
        error = info.value
        assert error.scenario_index == 7
        assert error.iterations == KrylovSettings().gmres_max_iterations
        assert np.isfinite(error.residual_norm) and error.residual_norm > 0.0
        assert "scenario 7" in str(error)

    def test_solve_falls_back_to_direct_stack_with_warning(self, monkeypatch):
        from repro.spn.ctmc_export import generator_matrix

        solver, edge_rates, graph = self.solver_and_rates()
        self.stall_gmres(monkeypatch)
        with pytest.warns(UserWarning, match="falling back to the direct solver"):
            probabilities = solver.solve(
                edge_rates, lambda: generator_matrix(graph), scenario_index=3
            )
        assert solver.last_solve_used_fallback
        assert solver.last_convergence_error is not None
        assert solver.last_convergence_error.scenario_index == 3
        assert probabilities.sum() == pytest.approx(1.0, abs=1e-12)
        # The fallback vector is the direct solution, not a stalled iterate.
        from repro.markov import solvers

        expected = solvers.steady_state(generator_matrix(graph), method="auto")
        np.testing.assert_allclose(probabilities, expected, atol=1e-12)


CHILD_SCRIPT = textwrap.dedent(
    """
    import time

    import numpy as np

    from repro.engine import ScenarioBatchEngine
    from repro.engine.parallel import SweepPlan
    from tests.spn.nets import machine_repair

    engine = ScenarioBatchEngine(machine_repair(machines=3))
    graph = engine.graph()
    rates = np.tile(np.asarray(graph.rate_vector, dtype=np.float64), (2, 1))
    plan = SweepPlan(graph, engine.template(), rates)
    print(plan.segment_name, flush=True)
    while True:
        time.sleep(0.1)
    """
)


class TestSignalCleanup:
    """S2: SIGTERM/SIGINT must not leak shared-memory segments."""

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_unlinks_live_segments(self, signum):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", ".", environment.get("PYTHONPATH")])
        )
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=environment,
        )
        try:
            segment = child.stdout.readline().strip().lstrip("/")
            assert segment, child.stderr.read()
            assert any(segment in entry for entry in leaked_segments())
            child.send_signal(signum)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        # The handler cleans up, then re-raises the signal for the caller.
        assert child.returncode == -signum
        assert not any(segment in entry for entry in leaked_segments())
