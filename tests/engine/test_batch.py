"""Tests for the scenario-batch engine."""

import numpy as np
import pytest

from repro.engine import ConstrainedSystemTemplate, ScenarioBatchEngine, ScenarioSpec
from repro.exceptions import AnalysisError
from repro.markov import solvers
from repro.spn import (
    ProbabilityMeasure,
    ThroughputMeasure,
    generate_tangible_reachability_graph,
    generator_matrix,
    solve_steady_state,
    with_transition_delays,
)

from tests.spn.nets import machine_repair, simple_component


def component_graph(mttf=100.0, mttr=2.0):
    return generate_tangible_reachability_graph(simple_component("X", mttf, mttr))


class TestConstrainedSystemTemplate:
    def _graph(self):
        return generate_tangible_reachability_graph(
            machine_repair(machines=6, mttf=10.0, mttr=1.0)
        )

    def test_fresh_system_matches_reference_builder(self):
        graph = self._graph()
        template = ConstrainedSystemTemplate(
            graph.edge_sources, graph.edge_targets, graph.number_of_states
        )
        system = template.fresh_system(graph.edge_rates)
        reference, rhs = solvers.constrained_balance_system(generator_matrix(graph))
        np.testing.assert_allclose(system.toarray(), reference.toarray(), atol=1e-14)
        np.testing.assert_allclose(template.rhs, rhs)

    def test_refill_matches_fresh_assembly(self):
        graph = self._graph()
        template = ConstrainedSystemTemplate(
            graph.edge_sources, graph.edge_targets, graph.number_of_states
        )
        system = template.fresh_system(graph.edge_rates)
        re_rated = with_transition_delays(graph, {"FAIL": 25.0, "REPAIR": 0.5})
        template.refill(system, re_rated.edge_rates)
        reference, _ = solvers.constrained_balance_system(generator_matrix(re_rated))
        np.testing.assert_allclose(system.toarray(), reference.toarray(), atol=1e-14)

    def test_single_state_rejected(self):
        with pytest.raises(ValueError):
            ConstrainedSystemTemplate(
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 1
            )


class TestScenarioSpec:
    def test_delays_are_inverted(self):
        spec = ScenarioSpec(name="s", delays={"T": 4.0})
        assert spec.resolved_rates() == {"T": 0.25}

    def test_rates_take_precedence_over_delays(self):
        spec = ScenarioSpec(name="s", delays={"T": 4.0}, rates={"T": 9.0})
        assert spec.resolved_rates() == {"T": 9.0}

    def test_non_positive_delay_rejected(self):
        with pytest.raises(AnalysisError):
            ScenarioSpec(name="s", delays={"T": 0.0}).resolved_rates()


class TestEngineSolve:
    def test_tiny_chain_matches_generic_solver(self):
        graph = component_graph()
        engine = ScenarioBatchEngine(graph)
        availability = engine.solve().probability("#X_ON > 0")
        expected = solve_steady_state(graph).probability("#X_ON > 0")
        assert availability == pytest.approx(expected, rel=1e-12)

    def test_mid_size_uses_template_and_matches_direct(self):
        graph = generate_tangible_reachability_graph(
            machine_repair(machines=500, mttf=10.0, mttr=1.0)
        )
        assert graph.number_of_states == 501  # above the GTH threshold
        engine = ScenarioBatchEngine(graph)
        solution = engine.solve(delays={"FAIL": 20.0})
        re_rated = with_transition_delays(graph, {"FAIL": 20.0})
        expected = solve_steady_state(re_rated, method="direct")
        np.testing.assert_allclose(
            solution.probabilities, expected.probabilities, atol=1e-12
        )

    def test_unknown_transition_rejected(self):
        engine = ScenarioBatchEngine(component_graph())
        with pytest.raises(AnalysisError):
            engine.solve(rates={"missing": 1.0})

    def test_accepts_declarative_net(self):
        engine = ScenarioBatchEngine(simple_component("X", 100.0, 2.0))
        assert engine.number_of_states == 2
        assert engine.graph() is engine.graph()


class TestEngineBatch:
    def make_engine(self):
        return ScenarioBatchEngine(
            generate_tangible_reachability_graph(
                machine_repair(machines=400, mttf=10.0, mttr=1.0)
            )
        )

    def specs(self):
        return [
            ScenarioSpec(name=f"mttf={mttf}", delays={"FAIL": mttf})
            for mttf in (5.0, 10.0, 20.0, 40.0)
        ]

    def measures(self):
        return [
            ProbabilityMeasure("all_up", "#BROKEN == 0"),
            ThroughputMeasure("repairs", "REPAIR"),
        ]

    def test_batch_matches_per_scenario_seed_loop(self):
        engine = self.make_engine()
        results = engine.run(self.specs(), self.measures())
        graph = engine.graph()
        for spec, result in zip(self.specs(), results):
            re_rated = with_transition_delays(graph, dict(spec.delays))
            solution = solve_steady_state(re_rated)
            assert result.value("all_up") == pytest.approx(
                solution.probability("#BROKEN == 0"), abs=1e-10
            )
            assert result.value("repairs") == pytest.approx(
                solution.throughput("REPAIR"), abs=1e-10
            )

    def test_parallel_matches_sequential(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 4
        )
        engine = self.make_engine()
        sequential = engine.run(self.specs(), self.measures())
        parallel = engine.run(self.specs(), self.measures(), max_workers=3)
        assert [r.name for r in parallel] == [r.name for r in sequential]
        for a, b in zip(sequential, parallel):
            assert b.value("all_up") == pytest.approx(a.value("all_up"), abs=1e-10)

    def test_solutions_dropped_unless_requested(self):
        engine = self.make_engine()
        specs = self.specs()[:2]
        without = engine.run(specs, self.measures())
        with_solutions = engine.run(specs, self.measures(), keep_solutions=True)
        assert all(result.solution is None for result in without)
        assert all(result.solution is not None for result in with_solutions)


class TestDedupeAndInjection:
    """Rate-vector dedupe and pre-solved injection (the grid pipeline's skip-list)."""

    def make_engine(self):
        return ScenarioBatchEngine(
            generate_tangible_reachability_graph(
                machine_repair(machines=4, mttf=10.0, mttr=1.0)
            )
        )

    def specs_with_duplicates(self):
        # Indices 0 and 2 resolve to identical rate vectors; 1 differs.
        return [
            ScenarioSpec(name="a", delays={"FAIL": 10.0}),
            ScenarioSpec(name="b", delays={"FAIL": 25.0}),
            ScenarioSpec(name="c", delays={"FAIL": 10.0}),
        ]

    def measures(self):
        return [ProbabilityMeasure("all_up", "#BROKEN == 0")]

    def test_rate_digest_distinguishes_vectors(self):
        from repro.engine import rate_digest

        a = np.array([1.0, 2.0, 3.0])
        assert rate_digest(a) == rate_digest(np.array([1.0, 2.0, 3.0]))
        assert rate_digest(a) != rate_digest(np.array([1.0, 2.0, 3.0 + 1e-15]))

    def test_duplicates_solved_once_and_share_the_vector(self):
        engine = self.make_engine()
        results = engine.run(
            self.specs_with_duplicates(), self.measures(), dedupe=True,
            keep_solutions=True,
        )
        stats = engine.last_run_dedupe
        assert (stats.cases, stats.solved, stats.deduped, stats.injected) == (3, 2, 1, 0)
        assert [r.solve_source for r in results] == ["solved", "solved", "deduped"]
        np.testing.assert_array_equal(
            results[0].solution.probabilities, results[2].solution.probabilities
        )
        assert results[2].solve_seconds == 0.0

    def test_dedupe_matches_undeduped_numbers(self):
        engine = self.make_engine()
        specs = self.specs_with_duplicates()
        plain = engine.run(specs, self.measures())
        assert engine.last_run_dedupe.deduped == 0
        deduped = engine.run(specs, self.measures(), dedupe=True)
        for a, b in zip(plain, deduped):
            assert abs(a.value("all_up") - b.value("all_up")) < 1e-12

    def test_dedupe_keeps_per_case_measures(self):
        # Same rates, different measures: one solve, two distinct values.
        engine = self.make_engine()
        specs = [
            ScenarioSpec(name="loose", delays={"FAIL": 10.0}),
            ScenarioSpec(name="strict", delays={"FAIL": 10.0}),
        ]
        measures = [
            ProbabilityMeasure("all_up", "#BROKEN == 0"),
            ProbabilityMeasure("most_up", "#BROKEN <= 1"),
        ]
        results = engine.run(specs, measures, dedupe=True)
        assert engine.last_run_dedupe.solved == 1
        assert results[1].solve_source == "deduped"
        for result in results:
            assert result.value("most_up") > result.value("all_up")

    def test_injected_vectors_skip_the_solve(self):
        engine = self.make_engine()
        specs = self.specs_with_duplicates()[:2]
        reference = engine.run(specs, self.measures(), keep_solutions=True)
        results = engine.run(
            specs,
            self.measures(),
            presolved={0: reference[0].solution.probabilities},
        )
        stats = engine.last_run_dedupe
        assert (stats.solved, stats.injected) == (1, 1)
        assert [r.solve_source for r in results] == ["injected", "solved"]
        for a, b in zip(reference, results):
            assert abs(a.value("all_up") - b.value("all_up")) < 1e-12

    def test_injected_vector_shape_and_index_validated(self):
        engine = self.make_engine()
        specs = self.specs_with_duplicates()[:2]
        with pytest.raises(ValueError):
            engine.run(
                specs, self.measures(), presolved={0: np.ones(3)}
            )
        with pytest.raises(ValueError):
            engine.run(
                specs,
                self.measures(),
                presolved={7: np.ones(engine.number_of_states)},
            )

    def test_dedupe_survives_block_splitting(self, monkeypatch):
        # Force the memory-bounded sub-batching path and check the stats
        # still add up across the recursive windows.
        from repro.engine import batch as batch_module

        monkeypatch.setattr(batch_module, "MAX_SOLUTION_BLOCK_BYTES", 1)
        engine = self.make_engine()
        results = engine.run(
            self.specs_with_duplicates(), self.measures(), dedupe=True
        )
        stats = engine.last_run_dedupe
        assert stats.cases == 3
        assert stats.solved + stats.deduped + stats.injected == 3
        plain_engine = self.make_engine()
        plain = plain_engine.run(self.specs_with_duplicates(), self.measures())
        for a, b in zip(plain, results):
            assert abs(a.value("all_up") - b.value("all_up")) < 1e-12
