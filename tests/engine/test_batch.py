"""Tests for the scenario-batch engine."""

import numpy as np
import pytest

from repro.engine import ConstrainedSystemTemplate, ScenarioBatchEngine, ScenarioSpec
from repro.exceptions import AnalysisError
from repro.markov import solvers
from repro.spn import (
    ProbabilityMeasure,
    ThroughputMeasure,
    generate_tangible_reachability_graph,
    generator_matrix,
    solve_steady_state,
    with_transition_delays,
)

from tests.spn.nets import machine_repair, simple_component


def component_graph(mttf=100.0, mttr=2.0):
    return generate_tangible_reachability_graph(simple_component("X", mttf, mttr))


class TestConstrainedSystemTemplate:
    def _graph(self):
        return generate_tangible_reachability_graph(
            machine_repair(machines=6, mttf=10.0, mttr=1.0)
        )

    def test_fresh_system_matches_reference_builder(self):
        graph = self._graph()
        template = ConstrainedSystemTemplate(
            graph.edge_sources, graph.edge_targets, graph.number_of_states
        )
        system = template.fresh_system(graph.edge_rates)
        reference, rhs = solvers.constrained_balance_system(generator_matrix(graph))
        np.testing.assert_allclose(system.toarray(), reference.toarray(), atol=1e-14)
        np.testing.assert_allclose(template.rhs, rhs)

    def test_refill_matches_fresh_assembly(self):
        graph = self._graph()
        template = ConstrainedSystemTemplate(
            graph.edge_sources, graph.edge_targets, graph.number_of_states
        )
        system = template.fresh_system(graph.edge_rates)
        re_rated = with_transition_delays(graph, {"FAIL": 25.0, "REPAIR": 0.5})
        template.refill(system, re_rated.edge_rates)
        reference, _ = solvers.constrained_balance_system(generator_matrix(re_rated))
        np.testing.assert_allclose(system.toarray(), reference.toarray(), atol=1e-14)

    def test_single_state_rejected(self):
        with pytest.raises(ValueError):
            ConstrainedSystemTemplate(
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 1
            )


class TestScenarioSpec:
    def test_delays_are_inverted(self):
        spec = ScenarioSpec(name="s", delays={"T": 4.0})
        assert spec.resolved_rates() == {"T": 0.25}

    def test_rates_take_precedence_over_delays(self):
        spec = ScenarioSpec(name="s", delays={"T": 4.0}, rates={"T": 9.0})
        assert spec.resolved_rates() == {"T": 9.0}

    def test_non_positive_delay_rejected(self):
        with pytest.raises(AnalysisError):
            ScenarioSpec(name="s", delays={"T": 0.0}).resolved_rates()


class TestEngineSolve:
    def test_tiny_chain_matches_generic_solver(self):
        graph = component_graph()
        engine = ScenarioBatchEngine(graph)
        availability = engine.solve().probability("#X_ON > 0")
        expected = solve_steady_state(graph).probability("#X_ON > 0")
        assert availability == pytest.approx(expected, rel=1e-12)

    def test_mid_size_uses_template_and_matches_direct(self):
        graph = generate_tangible_reachability_graph(
            machine_repair(machines=500, mttf=10.0, mttr=1.0)
        )
        assert graph.number_of_states == 501  # above the GTH threshold
        engine = ScenarioBatchEngine(graph)
        solution = engine.solve(delays={"FAIL": 20.0})
        re_rated = with_transition_delays(graph, {"FAIL": 20.0})
        expected = solve_steady_state(re_rated, method="direct")
        np.testing.assert_allclose(
            solution.probabilities, expected.probabilities, atol=1e-12
        )

    def test_unknown_transition_rejected(self):
        engine = ScenarioBatchEngine(component_graph())
        with pytest.raises(AnalysisError):
            engine.solve(rates={"missing": 1.0})

    def test_accepts_declarative_net(self):
        engine = ScenarioBatchEngine(simple_component("X", 100.0, 2.0))
        assert engine.number_of_states == 2
        assert engine.graph() is engine.graph()


class TestEngineBatch:
    def make_engine(self):
        return ScenarioBatchEngine(
            generate_tangible_reachability_graph(
                machine_repair(machines=400, mttf=10.0, mttr=1.0)
            )
        )

    def specs(self):
        return [
            ScenarioSpec(name=f"mttf={mttf}", delays={"FAIL": mttf})
            for mttf in (5.0, 10.0, 20.0, 40.0)
        ]

    def measures(self):
        return [
            ProbabilityMeasure("all_up", "#BROKEN == 0"),
            ThroughputMeasure("repairs", "REPAIR"),
        ]

    def test_batch_matches_per_scenario_seed_loop(self):
        engine = self.make_engine()
        results = engine.run(self.specs(), self.measures())
        graph = engine.graph()
        for spec, result in zip(self.specs(), results):
            re_rated = with_transition_delays(graph, dict(spec.delays))
            solution = solve_steady_state(re_rated)
            assert result.value("all_up") == pytest.approx(
                solution.probability("#BROKEN == 0"), abs=1e-10
            )
            assert result.value("repairs") == pytest.approx(
                solution.throughput("REPAIR"), abs=1e-10
            )

    def test_parallel_matches_sequential(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 4
        )
        engine = self.make_engine()
        sequential = engine.run(self.specs(), self.measures())
        parallel = engine.run(self.specs(), self.measures(), max_workers=3)
        assert [r.name for r in parallel] == [r.name for r in sequential]
        for a, b in zip(sequential, parallel):
            assert b.value("all_up") == pytest.approx(a.value("all_up"), abs=1e-10)

    def test_solutions_dropped_unless_requested(self):
        engine = self.make_engine()
        specs = self.specs()[:2]
        without = engine.run(specs, self.measures())
        with_solutions = engine.run(specs, self.measures(), keep_solutions=True)
        assert all(result.solution is None for result in without)
        assert all(result.solution is not None for result in with_solutions)
