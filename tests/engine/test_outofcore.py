"""Memory-aware planning, chunked routing, and cache fault injection."""

import numpy as np
import pytest

from repro.core import CaseStudyParameters
from repro.core.scenarios import homogeneous_mesh_scenario
from repro.engine import (
    ScenarioBatchEngine,
    ScenarioGridOrchestrator,
    ScenarioSpec,
    TRGCache,
)
from repro.engine import dispatch, faults
from repro.engine.dispatch import (
    BackendPlan,
    memory_budget_bytes,
    parse_memory_size,
    peak_rss_bytes,
    plan_representation,
)
from repro.engine.faults import CORRUPT_CACHE_READ, FaultPlan, FaultSpec
from repro.casestudy.grid import scenario_case
from repro.cli import main
from repro.exceptions import AnalysisError
from repro.spn.enabling import CompiledNet

from tests.spn.nets import machine_repair, mm1k_queue

REDUCED = CaseStudyParameters(required_running_vms=1)


def mesh_case(alpha=0.35):
    scenario = homogeneous_mesh_scenario(2, machines_per_datacenter=2, alpha=alpha)
    return scenario_case(scenario, parameters=REDUCED)


class TestParseMemorySize:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("512", 512),
            ("512b", 512),
            ("4k", 4 * 1024),
            ("4KiB", 4 * 1024),
            ("512M", 512 * 1024**2),
            ("512mb", 512 * 1024**2),
            ("2G", 2 * 1024**3),
            ("2GiB", 2 * 1024**3),
            ("1T", 1024**4),
            ("1.5G", int(1.5 * 1024**3)),
            (1048576, 1048576),
            (2.5e6, 2_500_000),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_memory_size(text) == expected

    @pytest.mark.parametrize("text", ["", "  ", "lots", "12X", "-5M", "0", True, None])
    def test_rejected_forms(self, text):
        with pytest.raises(ValueError):
            parse_memory_size(text)


class TestBudgetResolution:
    def test_explicit_budget_wins(self, monkeypatch):
        monkeypatch.setenv(dispatch.MEMORY_BUDGET_ENVIRONMENT_VARIABLE, "1G")
        assert memory_budget_bytes(12345) == 12345

    def test_environment_budget_is_parsed(self, monkeypatch):
        monkeypatch.setenv(dispatch.MEMORY_BUDGET_ENVIRONMENT_VARIABLE, "512M")
        assert memory_budget_bytes() == 512 * 1024**2

    def test_default_is_a_fraction_of_available_memory(self, monkeypatch):
        monkeypatch.delenv(
            dispatch.MEMORY_BUDGET_ENVIRONMENT_VARIABLE, raising=False
        )
        available = dispatch.available_memory_bytes()
        budget = memory_budget_bytes()
        if available is None:  # pragma: no cover - non-Linux platforms
            assert budget is None
        else:
            assert budget == pytest.approx(
                available * dispatch.DEFAULT_MEMORY_FRACTION, rel=0.5
            )

    def test_peak_rss_is_positive_and_monotone(self):
        first = peak_rss_bytes()
        ballast = np.ones(1_000_000)
        second = peak_rss_bytes()
        assert first > 0
        assert second >= first
        del ballast


class TestPlanRepresentation:
    def sizing(self, net, max_states=500_000):
        plan = plan_representation(net, max_states, budget_bytes=10**18)
        return plan.estimated_bytes, plan.chunked_estimated_bytes

    def test_small_net_stays_in_ram(self):
        plan = plan_representation(machine_repair(3), 500_000, budget_bytes=10**9)
        assert plan.representation == "in_ram"
        assert "fits" in plan.reason
        assert plan.budget_bytes == 10**9

    def test_budget_between_estimates_routes_chunked(self):
        net = mesh_case().net
        in_ram, chunked = self.sizing(net)
        assert chunked < in_ram
        plan = plan_representation(
            net, 500_000, budget_bytes=(in_ram + chunked) // 2
        )
        assert plan.representation == "chunked"
        assert "chunked working set" in plan.reason

    def test_budget_below_both_estimates_refuses(self):
        net = mesh_case().net
        _, chunked = self.sizing(net)
        plan = plan_representation(net, 500_000, budget_bytes=max(1, chunked // 100))
        assert plan.representation == "refused"
        for hint in ("--memory-budget", "max_states", "symmetry", "symbolic"):
            assert hint in plan.reason

    def test_forced_representation_bypasses_the_budget(self):
        plan = plan_representation(
            machine_repair(3), 500_000, budget_bytes=1, forced="in_ram"
        )
        assert plan.representation == "in_ram"
        assert "forced" in plan.reason

    def test_expected_states_overrides_the_structural_proxy(self):
        net = mesh_case().net
        proxy = plan_representation(net, 500_000, budget_bytes=10**18)
        exact = plan_representation(
            net, 500_000, budget_bytes=10**18, expected_states=1_568
        )
        assert exact.estimated_states == 1_568
        assert exact.estimated_bytes < proxy.estimated_bytes

    def test_as_dict_round_trips_every_field(self):
        plan = plan_representation(machine_repair(2), 1_000, budget_bytes=10**9)
        payload = plan.as_dict()
        assert payload == BackendPlan(**payload).as_dict()


class TestCacheFaultInjection:
    def entries(self, cache):
        return {entry.key for entry in cache.entries()}

    def test_corrupt_chunk_read_heals_only_the_hit_entry(self, tmp_path):
        cache = TRGCache(tmp_path)
        first = CompiledNet(machine_repair(3))
        second = CompiledNet(mm1k_queue(capacity=5))
        cache.generate_chunked(first, 10_000)
        cache.generate_chunked(second, 10_000)
        assert len(self.entries(cache)) == 2

        plan = FaultPlan(
            [FaultSpec(kind=CORRUPT_CACHE_READ, site="cache.load")], seed=0
        )
        with faults.injected(plan):
            assert cache.load_chunked(first, 10_000) is None
        assert plan.fired() == 1
        # The corrupted entry is gone; the untouched sibling still loads.
        assert len(self.entries(cache)) == 1
        intact = cache.load_chunked(second, 10_000)
        assert intact is not None
        intact.verify()

        # Regeneration heals the miss in place.
        cache.generate_chunked(first, 10_000)
        healed = cache.load_chunked(first, 10_000)
        assert healed is not None
        healed.verify()
        assert len(self.entries(cache)) == 2


class TestBatchEngineChunked:
    def test_chunked_engine_matches_in_ram_under_1e12(self):
        net = machine_repair(4)
        reference = ScenarioBatchEngine(net).solve()
        chunked = ScenarioBatchEngine(net, representation="chunked")
        solution = chunked.solve()
        assert chunked.representation == "chunked"
        np.testing.assert_allclose(
            solution.probabilities, reference.probabilities, atol=1e-12, rtol=0
        )

    def test_chunked_engine_round_trips_the_cache(self, tmp_path):
        net = machine_repair(4)
        cache = TRGCache(tmp_path)
        first = ScenarioBatchEngine(net, representation="chunked", cache=cache)
        first.graph()
        assert first.graph_source == "generated"
        second = ScenarioBatchEngine(net, representation="chunked", cache=cache)
        second.graph()
        assert second.graph_source == "cache"

    def test_chunked_engine_refuses_transient_and_explicit_methods(self):
        engine = ScenarioBatchEngine(machine_repair(3), representation="chunked")
        with pytest.raises(AnalysisError):
            engine.run_transient([ScenarioSpec("base")], [], [1.0])
        explicit = ScenarioBatchEngine(
            machine_repair(3), representation="chunked", method="direct"
        )
        with pytest.raises(AnalysisError):
            explicit.solve()

    def test_unknown_representation_is_rejected(self):
        with pytest.raises(ValueError):
            ScenarioBatchEngine(machine_repair(3), representation="holographic")


class TestGridPlanner:
    def straddling_budget(self, case):
        plan = plan_representation(case.net, 500_000, budget_bytes=10**18)
        return (plan.estimated_bytes + plan.chunked_estimated_bytes) // 2

    def test_constrained_budget_routes_groups_chunked(self, tmp_path):
        cases = [mesh_case(alpha=0.35), mesh_case(alpha=0.45)]
        budget = self.straddling_budget(cases[0])
        reference = ScenarioGridOrchestrator(cache=TRGCache(tmp_path / "ram")).run(
            cases
        )
        outcome = ScenarioGridOrchestrator(
            cache=TRGCache(tmp_path / "chunked"), memory_budget=budget
        ).run(cases)
        assert not outcome.failures
        for group in outcome.groups:
            assert group.representation == "chunked"
            assert group.memory_budget_bytes == budget
            assert group.estimated_peak_bytes is not None
            assert group.estimated_peak_bytes <= budget
            assert "budget" in group.planner_reason
            assert group.peak_rss_bytes is not None and group.peak_rss_bytes > 0
        for row, expected in zip(outcome.results, reference.results):
            delta = abs(row.measures["availability"] - expected.measures["availability"])
            assert delta < 1e-12

    def test_unconstrained_budget_stays_in_ram(self, tmp_path):
        outcome = ScenarioGridOrchestrator(
            cache=TRGCache(tmp_path), memory_budget=10**18
        ).run([mesh_case()])
        (group,) = outcome.groups
        assert group.representation == "in_ram"
        assert group.planner_reason is not None and "fits" in group.planner_reason

    def test_impossible_budget_quarantines_the_group_at_plan_stage(self, tmp_path):
        outcome = ScenarioGridOrchestrator(
            cache=TRGCache(tmp_path), memory_budget=4096
        ).run([mesh_case()])
        assert not outcome.results
        (failure,) = outcome.failures
        assert failure.stage == "plan"
        assert failure.error_type == "MemoryBudgetExceeded"
        assert failure.metadata["representation"] == "refused"


class TestCommandLine:
    def test_grid_rejects_malformed_memory_budget(self, capsys):
        with pytest.raises(SystemExit):
            main(["grid", "--memory-budget", "lots"])
        assert "--memory-budget" in capsys.readouterr().err

    def test_cache_show_reports_total_bytes_and_representation(
        self, capsys, tmp_path
    ):
        cache = TRGCache(tmp_path)
        cache.generate_chunked(CompiledNet(machine_repair(3)), 10_000)
        assert main(["cache", "--dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "total on disk" in output
        assert "chunked" in output

    def test_cache_show_rejects_older_than(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "--dir", str(tmp_path), "--older-than", "5"])
        assert "--older-than" in capsys.readouterr().err

    def test_cache_clear_older_than_spares_fresh_entries(self, capsys, tmp_path):
        cache = TRGCache(tmp_path)
        cache.generate_chunked(CompiledNet(machine_repair(3)), 10_000)
        assert main(["cache", "clear", "--dir", str(tmp_path), "--older-than", "1"]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert len(cache.entries()) == 1
        assert main(["cache", "clear", "--dir", str(tmp_path), "--older-than", "0"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not cache.entries()
