"""Durability and interruption semantics of the grid checkpoint.

Covers the robustness-PR guarantees at the engine layer: shard and manifest
writes are fsync'd before their atomic rename (they survive power loss, not
just process death), quarantine records rotate on resume and never name a
case twice, and a set ``cancel_event`` stops the run at a group boundary
leaving a clean, resumable checkpoint.
"""

import json
import os
import threading

import pytest

from repro.core import CaseStudyParameters
from repro.core.scenarios import SingleDataCenterScenario
from repro.engine.faults import FailureRecord
from repro.engine.grid import (
    ScenarioGridOrchestrator,
    load_checkpoint,
    read_manifest,
)
from repro.casestudy.grid import evaluate_grid, scenario_case

REDUCED = CaseStudyParameters(required_running_vms=1)


def single_site_cases(machine_counts=(1, 2)):
    return [
        scenario_case(
            SingleDataCenterScenario(
                machines=machines, label=f"single m={machines}"
            ),
            parameters=REDUCED,
        )
        for machines in machine_counts
    ]


def single_site_scenarios(machine_counts=(1, 2)):
    return [
        SingleDataCenterScenario(machines=machines, label=f"single m={machines}")
        for machines in machine_counts
    ]


class TestFsyncBeforeRename:
    def test_shard_and_manifest_writes_fsync(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def spying_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spying_fsync)
        orchestrator = ScenarioGridOrchestrator(
            cache=None, shard_directory=tmp_path, shard_size=1
        )
        outcome = orchestrator.run(single_site_cases())
        assert len(outcome.results) == 2
        assert outcome.shard_paths
        # Shard flushes + manifest write + their directory fsyncs: at least
        # one fsync per durable artifact.
        assert len(synced) >= len(outcome.shard_paths) + 1

    def test_atomicio_helpers_survive_partial_write(self, tmp_path):
        from repro.engine.atomicio import write_text_durably

        target = tmp_path / "file.json"
        write_text_durably(target, '{"ok": true}\n')
        assert json.loads(target.read_text()) == {"ok": True}
        # No temporary litter left next to the final file.
        assert [path.name for path in tmp_path.iterdir()] == ["file.json"]


class TestFailureRotation:
    def fabricate_failures(self, directory, names=("single m=1",)):
        record = FailureRecord(
            stage="generate",
            group="g1",
            cases=tuple(names),
            case_indices=tuple(range(len(names))),
            attempts=1,
            error="boom",
            error_type="RuntimeError",
        )
        (directory / "grid-failures.jsonl").write_text(
            json.dumps(record.as_record()) + "\n"
        )

    def test_resume_rotates_previous_failures_aside(self, tmp_path):
        self.fabricate_failures(tmp_path)
        outcome = evaluate_grid(
            single_site_scenarios(),
            parameters=REDUCED,
            shard_directory=tmp_path,
            resume=True,
            use_cache=False,
        )
        assert len(outcome.results) == 2 and not outcome.failures
        # The stale quarantine was rotated for post-mortems, and no active
        # failure file remains (this run had none).
        assert (tmp_path / "grid-failures.1.jsonl").exists()
        assert not (tmp_path / "grid-failures.jsonl").exists()

    def test_repeated_resumes_keep_rotating(self, tmp_path):
        evaluate_grid(
            single_site_scenarios(),
            parameters=REDUCED,
            shard_directory=tmp_path,
            use_cache=False,
        )
        for _ in range(2):
            self.fabricate_failures(tmp_path)
            evaluate_grid(
                single_site_scenarios(),
                parameters=REDUCED,
                shard_directory=tmp_path,
                resume=True,
                use_cache=False,
            )
        assert (tmp_path / "grid-failures.1.jsonl").exists()
        assert (tmp_path / "grid-failures.2.jsonl").exists()

    def test_failure_records_never_duplicate_a_case(self, tmp_path):
        orchestrator = ScenarioGridOrchestrator(cache=None, shard_directory=tmp_path)
        record = FailureRecord(
            stage="solve",
            group="g1",
            cases=("case-a", "case-b"),
            case_indices=(0, 1),
            attempts=2,
            error="boom",
            error_type="RuntimeError",
        )
        duplicate = FailureRecord(
            stage="solve",
            group="g2",
            cases=("case-b",),
            case_indices=(1,),
            attempts=1,
            error="boom again",
            error_type="RuntimeError",
        )
        orchestrator._write_failures([record, duplicate])
        lines = (tmp_path / "grid-failures.jsonl").read_text().splitlines()
        names = [
            name for line in lines for name in json.loads(line)["cases"]
        ]
        assert sorted(names) == ["case-a", "case-b"]
        assert len(names) == len(set(names))


class TestCancellation:
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_preset_cancel_stops_before_any_group(self, tmp_path, pipeline):
        cancel = threading.Event()
        cancel.set()
        outcome = evaluate_grid(
            single_site_scenarios(),
            parameters=REDUCED,
            shard_directory=tmp_path,
            cancel_event=cancel,
            pipeline=pipeline,
            jobs=2 if pipeline else None,
            use_cache=False,
        )
        assert outcome.interrupted is True
        assert outcome.results == []
        assert not outcome.failures  # interrupted is not failed

    def test_cancelled_run_leaves_resumable_checkpoint(self, tmp_path):
        # Uncancelled reference first (separate directory).
        reference = evaluate_grid(
            single_site_scenarios(),
            parameters=REDUCED,
            shard_directory=tmp_path / "ref",
            use_cache=False,
        )
        cancel = threading.Event()
        cancel.set()
        interrupted = evaluate_grid(
            single_site_scenarios(),
            parameters=REDUCED,
            shard_directory=tmp_path / "run",
            cancel_event=cancel,
            use_cache=False,
        )
        assert interrupted.interrupted
        # Resume with the event cleared completes the grid bit-identically.
        resumed = evaluate_grid(
            single_site_scenarios(),
            parameters=REDUCED,
            shard_directory=tmp_path / "run",
            resume=True,
            use_cache=False,
        )
        assert resumed.interrupted is False
        by_name = {row.name: row for row in resumed.results}
        for row in reference.results:
            for measure, value in row.measures.items():
                assert by_name[row.name].measures[measure] == value

    def test_manifest_readable_and_attach_resumes(self, tmp_path):
        outcome = evaluate_grid(
            single_site_scenarios(),
            parameters=REDUCED,
            shard_directory=tmp_path,
            use_cache=False,
        )
        manifest = read_manifest(tmp_path)
        assert manifest is not None and "names_sha256" in manifest
        assert len(load_checkpoint(tmp_path)) == len(outcome.results)
        attached = ScenarioGridOrchestrator.attach(tmp_path, cache=None)
        assert attached.resume is True
        resumed = attached.run(single_site_cases())
        assert all(row.solve_source == "checkpoint" for row in resumed.results)
        assert resumed.restored_cases == len(outcome.results)

    def test_read_manifest_tolerates_garbage(self, tmp_path):
        assert read_manifest(tmp_path) is None
        (tmp_path / "grid-manifest.json").write_text("{torn")
        assert read_manifest(tmp_path) is None
        (tmp_path / "grid-manifest.json").write_text("[1, 2]")
        assert read_manifest(tmp_path) is None
