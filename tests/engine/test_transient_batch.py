"""Tests for the batched transient-availability workload (run_transient)."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.engine import ScenarioBatchEngine, ScenarioSpec
from repro.engine.measures import RewardMatrix
from repro.exceptions import AnalysisError
from repro.markov.transient import transient_reward_block
from repro.spn import (
    ExpectedTokensMeasure,
    ProbabilityMeasure,
    generate_tangible_reachability_graph,
    generator_matrix,
    with_transition_delays,
)

from tests.spn.nets import machine_repair

#: Agreement demanded of run_transient against the dense matrix-exponential
#: reference (the acceptance bar of the transient workload).
EXPM_TOLERANCE = 1e-10

TIMES = np.array([0.0, 0.2, 1.0, 3.0, 10.0, 40.0])


@pytest.fixture(scope="module")
def graph():
    # 121 tangible states: large enough that the batched block path is not
    # trivially exercised, small enough for dense-expm references.
    return generate_tangible_reachability_graph(
        machine_repair(machines=120, mttf=10.0, mttr=1.0)
    )


def specs():
    return [
        ScenarioSpec(name=f"mttf={mttf:g}", delays={"FAIL": mttf})
        for mttf in (4.0, 10.0, 25.0, 60.0)
    ]


def measures():
    return [
        ProbabilityMeasure("all_up", "#BROKEN == 0"),
        ExpectedTokensMeasure("broken", "#BROKEN"),
    ]


def expm_references(graph, spec, reward_column):
    """Dense point and interval reference values over TIMES.

    The interval reference uses the augmented-generator identity
    ``expm([[Q, I], [0, 0]] t)`` whose upper-right block is ``∫₀ᵗ e^{Qu} du``
    — exact, no numerical quadrature.
    """
    re_rated = with_transition_delays(graph, dict(spec.delays))
    q = generator_matrix(re_rated).toarray()
    n = q.shape[0]
    engine = ScenarioBatchEngine(graph)
    pi0 = engine.initial_vector()
    augmented = np.zeros((2 * n, 2 * n))
    augmented[:n, :n] = q
    augmented[:n, n:] = np.eye(n)
    point, interval = [], []
    for t in TIMES:
        point.append(float((pi0 @ expm(q * t)) @ reward_column))
        if t == 0.0:
            interval.append(point[-1])
        else:
            integral = expm(augmented * t)[:n, n:]
            interval.append(float((pi0 @ integral) @ reward_column) / t)
    return np.asarray(point), np.asarray(interval)


class TestAgainstDenseExpm:
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 3)])
    def test_point_and_interval_match_expm(self, graph, backend, workers, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 4
        )
        engine = ScenarioBatchEngine(graph)
        results = engine.run_transient(
            specs(), measures(), TIMES, max_workers=workers, backend=backend
        )
        assert engine.last_run_backend == backend
        reward = RewardMatrix.from_measures(graph, measures())
        for spec, result in zip(specs(), results):
            for column, name in enumerate(reward.names):
                ref_point, ref_interval = expm_references(
                    graph, spec, reward.matrix[:, column]
                )
                assert np.max(np.abs(result.point[name] - ref_point)) < EXPM_TOLERANCE
                assert (
                    np.max(np.abs(result.interval[name] - ref_interval))
                    < EXPM_TOLERANCE
                )

    def test_auto_and_process_requests_agree_with_serial(self, graph, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 4
        )
        engine = ScenarioBatchEngine(graph)
        serial = engine.run_transient(specs(), measures(), TIMES, backend="serial")
        auto = engine.run_transient(
            specs(), measures(), TIMES, max_workers=2, backend="auto"
        )
        assert engine.last_run_backend == "thread"
        with pytest.warns(UserWarning, match="thread backend"):
            process = engine.run_transient(
                specs(), measures(), TIMES, max_workers=2, backend="process"
            )
        assert engine.last_run_backend == "thread"
        for reference, others in ((serial, auto), (serial, process)):
            for ref, ours in zip(reference, others):
                for name in ref.point:
                    assert np.max(np.abs(ref.point[name] - ours.point[name])) < 1e-10
                    assert (
                        np.max(np.abs(ref.interval[name] - ours.interval[name]))
                        < 1e-10
                    )


class TestTransientSemantics:
    def test_time_zero_returns_initial_values(self, graph):
        engine = ScenarioBatchEngine(graph)
        (result,) = engine.run_transient(specs()[:1], measures(), [0.0])
        # The initial marking has every machine up.
        assert result.point["all_up"][0] == pytest.approx(1.0)
        assert result.interval["all_up"][0] == pytest.approx(1.0)
        assert result.point["broken"][0] == pytest.approx(0.0)

    def test_long_horizon_converges_to_steady_state(self, graph):
        engine = ScenarioBatchEngine(graph)
        spec = specs()[1]
        (result,) = engine.run_transient([spec], measures(), [4000.0])
        steady = engine.run([spec], measures(), backend="serial")[0]
        assert result.point["all_up"][0] == pytest.approx(
            steady.value("all_up"), abs=1e-8
        )

    def test_probability_is_conserved(self, graph):
        engine = ScenarioBatchEngine(graph)
        conservation = [ProbabilityMeasure("total", "#BROKEN >= 0")]
        results = engine.run_transient(specs(), conservation, TIMES)
        for result in results:
            np.testing.assert_allclose(result.point["total"], 1.0, atol=1e-12)
            np.testing.assert_allclose(result.interval["total"], 1.0, atol=1e-12)

    def test_negative_times_rejected(self, graph):
        engine = ScenarioBatchEngine(graph)
        with pytest.raises(AnalysisError):
            engine.run_transient(specs()[:1], measures(), [-1.0])

    def test_empty_batch(self, graph):
        assert ScenarioBatchEngine(graph).run_transient([], measures(), TIMES) == []

    def test_unknown_backend_rejected(self, graph):
        with pytest.raises(ValueError):
            ScenarioBatchEngine(graph).run_transient(
                specs()[:1], measures(), TIMES, backend="gpu"
            )

    def test_results_keep_spec_order_and_metadata(self, graph):
        engine = ScenarioBatchEngine(graph)
        results = engine.run_transient(specs(), measures(), TIMES)
        assert [r.spec for r in results] == specs()
        for result in results:
            assert result.number_of_states == graph.number_of_states
            assert result.solve_seconds >= 0.0
            np.testing.assert_array_equal(result.times, TIMES)


class TestRegimeGrouping:
    def test_scenarios_with_wildly_different_rates_still_match_expm(self, graph):
        """Rate regimes spanning orders of magnitude are grouped separately
        (a shared truncation across all of them would be either wasteful or
        wrong); every scenario must still match the dense reference."""
        wild = [
            ScenarioSpec(name="slow", delays={"FAIL": 800.0, "REPAIR": 40.0}),
            ScenarioSpec(name="fast", delays={"FAIL": 0.5, "REPAIR": 0.05}),
        ]
        engine = ScenarioBatchEngine(graph)
        results = engine.run_transient(wild, measures()[:1], TIMES)
        reward = RewardMatrix.from_measures(graph, measures()[:1])
        for spec, result in zip(wild, results):
            ref_point, ref_interval = expm_references(graph, spec, reward.matrix[:, 0])
            assert np.max(np.abs(result.point["all_up"] - ref_point)) < EXPM_TOLERANCE
            assert (
                np.max(np.abs(result.interval["all_up"] - ref_interval))
                < EXPM_TOLERANCE
            )


class TestTransientRewardBlockValidation:
    def test_edge_block_shape_validated(self):
        with pytest.raises(AnalysisError, match="columns"):
            transient_reward_block(
                np.array([0]),
                np.array([1]),
                2,
                np.zeros((1, 3)),
                np.array([1.0, 0.0]),
                [1.0],
                lambda block, idx: np.zeros((block.shape[0], 0)),
                0,
            )

    def test_requires_at_least_one_time(self):
        with pytest.raises(AnalysisError, match="time"):
            transient_reward_block(
                np.array([0]),
                np.array([1]),
                2,
                np.ones((1, 1)),
                np.array([1.0, 0.0]),
                [],
                lambda block, idx: np.zeros((block.shape[0], 0)),
                0,
            )

    def test_zero_rate_scenarios_are_constant(self):
        point, interval, _ = transient_reward_block(
            np.array([0]),
            np.array([1]),
            2,
            np.zeros((1, 1)),
            np.array([0.25, 0.75]),
            [0.0, 5.0],
            lambda block, idx: block[:, :1] * 4.0,
            1,
        )
        np.testing.assert_allclose(point[0, :, 0], 1.0)
        np.testing.assert_allclose(interval[0, :, 0], 1.0)
