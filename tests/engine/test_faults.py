"""Tests for the deterministic fault-injection harness and policy types."""

import json
import os

import pytest

from repro.engine import faults
from repro.engine.dispatch import TaskWatchdog
from repro.engine.faults import (
    FAULT_PLAN_ENVIRONMENT_VARIABLE,
    FailureRecord,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    RetryPolicy,
)


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    """Keep the module-level plan and the env var out of every test."""
    monkeypatch.delenv(FAULT_PLAN_ENVIRONMENT_VARIABLE, raising=False)
    faults.clear()
    yield
    faults.clear()


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")

    def test_rejects_bad_counters_and_probability(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=faults.WORKER_KILL, count=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind=faults.WORKER_KILL, after=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind=faults.WORKER_KILL, probability=1.5)


class TestFaultPlan:
    def test_fires_count_times_then_stays_quiet(self):
        plan = FaultPlan([FaultSpec(kind=faults.TASK_EXCEPTION, count=2)])
        assert plan.fire(faults.TASK_EXCEPTION, "generate") is not None
        assert plan.fire(faults.TASK_EXCEPTION, "generate") is not None
        assert plan.fire(faults.TASK_EXCEPTION, "generate") is None
        assert plan.fired() == 2
        assert plan.exhausted()

    def test_after_skips_leading_events(self):
        plan = FaultPlan([FaultSpec(kind=faults.WORKER_KILL, after=2)])
        assert plan.fire(faults.WORKER_KILL, "solve") is None
        assert plan.fire(faults.WORKER_KILL, "solve") is None
        assert plan.fire(faults.WORKER_KILL, "solve") is not None
        assert plan.fire(faults.WORKER_KILL, "solve") is None

    def test_site_patterns_use_fnmatch(self):
        plan = FaultPlan(
            [FaultSpec(kind=faults.TASK_EXCEPTION, site="generate*", count=10)]
        )
        assert plan.fire(faults.TASK_EXCEPTION, "generate") is not None
        assert plan.fire(faults.TASK_EXCEPTION, "generate.inprocess") is not None
        assert plan.fire(faults.TASK_EXCEPTION, "solve.group") is None
        assert plan.fired(faults.TASK_EXCEPTION) == 2

    def test_kind_must_match(self):
        plan = FaultPlan([FaultSpec(kind=faults.SLOW_TASK, delay_seconds=0.5)])
        assert plan.fire(faults.WORKER_KILL, "generate") is None
        spec = plan.fire(faults.SLOW_TASK, "generate")
        assert spec is not None and spec.delay_seconds == 0.5

    def test_probability_is_seeded_and_reproducible(self):
        def outcomes(seed):
            plan = FaultPlan(
                [
                    FaultSpec(
                        kind=faults.TASK_EXCEPTION, probability=0.5, count=1000
                    )
                ],
                seed=seed,
            )
            return [
                plan.fire(faults.TASK_EXCEPTION, "x") is not None
                for _ in range(40)
            ]

        assert outcomes(7) == outcomes(7)  # same seed, same schedule
        assert outcomes(7) != outcomes(8)  # different seed, different one
        assert any(outcomes(7)) and not all(outcomes(7))

    def test_events_record_firing_order(self):
        plan = FaultPlan(
            [
                FaultSpec(kind=faults.WORKER_KILL, site="generate"),
                FaultSpec(kind=faults.CORRUPT_CACHE_READ, site="cache.load"),
            ]
        )
        plan.fire(faults.CORRUPT_CACHE_READ, "cache.load")
        plan.fire(faults.WORKER_KILL, "generate")
        assert [event["kind"] for event in plan.events] == [
            faults.CORRUPT_CACHE_READ,
            faults.WORKER_KILL,
        ]

    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    kind=faults.SLOW_TASK,
                    site="solve",
                    after=1,
                    count=3,
                    probability=0.25,
                    delay_seconds=2.0,
                )
            ],
            seed=42,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == 42
        assert clone.specs == plan.specs

    def test_from_json_accepts_bare_spec_list(self):
        plan = FaultPlan.from_json('[{"kind": "worker_kill", "site": "generate"}]')
        assert len(plan.specs) == 1
        assert plan.specs[0].kind == faults.WORKER_KILL

    def test_from_json_rejects_scalars(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json('"not a plan"')


class TestInstallation:
    def test_install_clear_active(self):
        plan = FaultPlan()
        faults.install(plan)
        assert faults.active() is plan
        faults.clear()
        assert faults.active() is None

    def test_injected_context_manager_restores(self):
        outer = FaultPlan()
        faults.install(outer)
        inner = FaultPlan()
        with faults.injected(inner) as seen:
            assert seen is inner
            assert faults.active() is inner
        assert faults.active() is outer

    def test_environment_variable_inline_json(self, monkeypatch):
        document = json.dumps(
            {"seed": 3, "faults": [{"kind": "task_exception", "site": "solve"}]}
        )
        monkeypatch.setenv(FAULT_PLAN_ENVIRONMENT_VARIABLE, document)
        plan = faults.active()
        assert plan is not None
        assert plan.seed == 3
        assert plan.specs[0].site == "solve"

    def test_environment_variable_at_file(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"kind": "worker_kill"}]}')
        monkeypatch.setenv(FAULT_PLAN_ENVIRONMENT_VARIABLE, f"@{path}")
        plan = faults.active()
        assert plan is not None
        assert plan.specs[0].kind == faults.WORKER_KILL


class TestFaultedCall:
    def test_task_exception_raises(self):
        with pytest.raises(InjectedFaultError):
            faults.faulted_call(faults.TASK_EXCEPTION, 0.0, lambda: 1)

    def test_slow_task_still_returns(self):
        assert faults.faulted_call(faults.SLOW_TASK, 0.0, lambda x: x + 1, 2) == 3

    def test_passthrough_for_cache_kinds(self):
        assert faults.faulted_call(faults.CORRUPT_CACHE_READ, 0.0, lambda: "ok") == "ok"

    def test_worker_kill_sigkills_a_child(self):
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child dies via SIGKILL
            faults.faulted_call(faults.WORKER_KILL, 0.0, lambda: None)
            os._exit(0)  # unreachable if the kill worked
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status)
        assert os.WTERMSIG(status) == 9


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_factor=2.0, max_backoff_seconds=0.3
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(9) == pytest.approx(0.3)


class TestFailureRecord:
    def test_as_record_is_json_able(self):
        record = FailureRecord(
            stage="generate",
            group="abc123",
            cases=("case-a", "case-b"),
            case_indices=(0, 3),
            attempts=3,
            error="boom",
            error_type="RuntimeError",
            metadata={"max_states": 100},
        )
        document = json.loads(json.dumps(record.as_record()))
        assert document["stage"] == "generate"
        assert document["cases"] == ["case-a", "case-b"]
        assert document["case_indices"] == [0, 3]
        assert document["attempts"] == 3


class TestTaskWatchdog:
    def test_disabled_without_deadlines(self):
        watchdog = TaskWatchdog(None)
        assert not watchdog.enabled
        watchdog.watch("token", "generate")
        assert watchdog.overdue() == []
        assert watchdog.next_poll_seconds() is None

    def test_overdue_reports_once(self):
        watchdog = TaskWatchdog({"generate": 10.0})
        watchdog.watch("token", "generate", now=0.0)
        assert watchdog.overdue(now=5.0) == []
        overdue = watchdog.overdue(now=11.0)
        assert len(overdue) == 1
        token, kind, elapsed = overdue[0]
        assert token == "token" and kind == "generate"
        assert elapsed == pytest.approx(11.0)
        assert watchdog.overdue(now=20.0) == []  # dropped after reporting

    def test_untracked_kinds_are_ignored(self):
        watchdog = TaskWatchdog({"generate": 1.0, "solve": None})
        watchdog.watch("token", "solve", now=0.0)
        assert watchdog.overdue(now=100.0) == []

    def test_next_poll_is_min_remaining(self):
        watchdog = TaskWatchdog({"generate": 10.0})
        watchdog.watch("a", "generate", now=0.0)
        watchdog.watch("b", "generate", now=4.0)
        assert watchdog.next_poll_seconds(now=6.0) == pytest.approx(4.0)
        watchdog.forget("a")
        assert watchdog.next_poll_seconds(now=6.0) == pytest.approx(8.0)


class TestFromJsonDiagnostics:
    """Malformed plans must fail with actionable, position-naming errors."""

    def test_rejects_invalid_json_text(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{broken")

    def test_rejects_non_spec_entries(self):
        with pytest.raises(ValueError, match="fault spec #2"):
            FaultPlan.from_json('[{"kind": "slow_task"}, "oops"]')

    def test_rejects_unknown_spec_fields(self):
        with pytest.raises(ValueError, match="fault spec #1.*unknown"):
            FaultPlan.from_json('[{"kind": "slow_task", "sight": "solve"}]')

    def test_rejects_missing_kind(self):
        with pytest.raises(ValueError, match="fault spec #1.*'kind'"):
            FaultPlan.from_json('[{"site": "solve"}]')

    def test_rejects_unknown_kind_with_position(self):
        with pytest.raises(ValueError, match="fault spec #1.*meteor"):
            FaultPlan.from_json('[{"kind": "meteor"}]')

    def test_rejects_negative_count_with_position(self):
        with pytest.raises(ValueError, match="fault spec #1.*non-negative"):
            FaultPlan.from_json('[{"kind": "slow_task", "count": -1}]')

    def test_rejects_bad_site_pattern(self):
        with pytest.raises(ValueError, match="fault spec #1.*non-empty fnmatch"):
            FaultPlan.from_json('[{"kind": "slow_task", "site": "   "}]')

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan.from_json('{"seed": "zero", "faults": []}')

    def test_rejects_non_array_faults(self):
        with pytest.raises(ValueError, match="'faults'"):
            FaultPlan.from_json('{"faults": {"kind": "slow_task"}}')


class TestEnvironmentRoundTrip:
    """Inline JSON and @file forms of REPRO_FAULT_PLAN must be equivalent."""

    DOCUMENT = json.dumps(
        {
            "seed": 7,
            "faults": [
                {"kind": "slow_task", "site": "solve.group", "after": 1,
                 "count": 3, "delay_seconds": 0.25},
                {"kind": "task_exception", "site": "service.*"},
            ],
        }
    )

    def test_inline_and_at_file_parse_identically(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULT_PLAN_ENVIRONMENT_VARIABLE, self.DOCUMENT)
        inline = faults.plan_from_environment()
        path = tmp_path / "plan.json"
        path.write_text(self.DOCUMENT)
        monkeypatch.setenv(FAULT_PLAN_ENVIRONMENT_VARIABLE, f"@{path}")
        from_file = faults.plan_from_environment()
        assert inline is not None and from_file is not None
        assert inline.seed == from_file.seed == 7
        assert inline.specs == from_file.specs

    def test_round_trips_through_to_json(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENVIRONMENT_VARIABLE, self.DOCUMENT)
        plan = faults.plan_from_environment()
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.specs == plan.specs and clone.seed == plan.seed


class TestPerturb:
    """The parent-side perturb() helper behind the new service sites."""

    def test_noop_without_plan(self):
        faults.perturb(faults.SERVICE_RUN_JOB)  # must not raise

    def test_slow_task_sleeps_then_returns(self):
        faults.install(
            FaultPlan(
                faults=(
                    FaultSpec(
                        kind=faults.SLOW_TASK,
                        site=faults.SERVICE_RUN_JOB,
                        delay_seconds=0.05,
                    ),
                )
            )
        )
        import time as _time

        started = _time.perf_counter()
        faults.perturb(faults.SERVICE_RUN_JOB)
        assert _time.perf_counter() - started >= 0.05

    def test_task_exception_raises_with_site(self):
        faults.install(
            FaultPlan(
                faults=(
                    FaultSpec(
                        kind=faults.TASK_EXCEPTION,
                        site=faults.SERVICE_STORE_APPEND,
                    ),
                )
            )
        )
        with pytest.raises(InjectedFaultError, match="service.store.append"):
            faults.perturb(faults.SERVICE_STORE_APPEND)

    def test_service_sites_are_glob_addressable(self):
        faults.install(
            FaultPlan(
                faults=(
                    FaultSpec(kind=faults.TASK_EXCEPTION, site="service.*", count=3),
                )
            )
        )
        for site in (
            faults.SERVICE_STORE_APPEND,
            faults.SERVICE_HANDLE_SUBMIT,
            faults.SERVICE_RUN_JOB,
        ):
            with pytest.raises(InjectedFaultError):
                faults.perturb(site)
