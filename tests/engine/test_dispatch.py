"""Tests for the cost-aware dispatch layer (clamping + backend choice)."""

import warnings

import pytest

from repro.engine import ScenarioBatchEngine, ScenarioSpec
from repro.engine.dispatch import (
    CostObservations,
    choose_backend,
    effective_cpu_count,
    predict_process,
    predict_serial,
    predict_thread,
    resolve_worker_count,
)
from repro.spn import ProbabilityMeasure, generate_tangible_reachability_graph

from tests.spn.nets import machine_repair


def sweep_engine(machines=400):
    return ScenarioBatchEngine(
        generate_tangible_reachability_graph(
            machine_repair(machines=machines, mttf=10.0, mttr=1.0)
        )
    )


def sweep_specs(count=6):
    return [
        ScenarioSpec(name=f"mttf={mttf}", delays={"FAIL": mttf})
        for mttf in (5.0, 8.0, 12.0, 18.0, 27.0, 40.0)[:count]
    ]


def availability():
    return [ProbabilityMeasure("all_up", "#BROKEN == 0")]


class TestEffectiveCores:
    def test_reports_at_least_one_core(self):
        assert effective_cpu_count() >= 1

    def test_honours_affinity_mask(self, monkeypatch):
        monkeypatch.setattr("os.sched_getaffinity", lambda pid: {0, 3}, raising=False)
        assert effective_cpu_count() == 2


class TestWorkerClamp:
    def test_requests_within_cores_pass_through_silently(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 8
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_worker_count(4) == 4

    def test_requests_above_cores_are_clamped_with_warning(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 2
        )
        with pytest.warns(UserWarning, match="clamping max_workers to 2"):
            assert resolve_worker_count(8) == 2

    def test_non_positive_requests_become_one_worker(self):
        assert resolve_worker_count(0) == 1
        assert resolve_worker_count(-3) == 1


class TestAutoOnOneCore:
    """The headline regression: auto must never parallelise on one core."""

    @pytest.fixture(autouse=True)
    def _single_core(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 1
        )

    def test_auto_resolves_to_serial(self):
        engine = sweep_engine()
        with pytest.warns(UserWarning, match="clamping max_workers to 1"):
            engine.run(sweep_specs(), availability(), max_workers=8, backend="auto")
        assert engine.last_run_backend == "serial"

    def test_explicit_jobs_above_core_count_are_clamped(self):
        engine = sweep_engine()
        with pytest.warns(UserWarning, match="clamping max_workers to 1"):
            engine.run(sweep_specs(), availability(), max_workers=8, backend="thread")
        # An explicit backend is honoured, but with a single clamped worker
        # (one contiguous chunk — the serial chain on a pool thread).
        assert engine.last_run_backend == "thread"

    def test_auto_matches_serial_results_exactly(self):
        auto_engine = sweep_engine()
        with pytest.warns(UserWarning, match="clamping"):
            auto = auto_engine.run(
                sweep_specs(), availability(), max_workers=8, backend="auto"
            )
        serial = sweep_engine().run(sweep_specs(), availability(), backend="serial")
        for ours, ref in zip(auto, serial):
            assert ours.value("all_up") == ref.value("all_up")


class TestCostModel:
    def observations(self, cold=2.0, warm=1.0):
        return CostObservations(cold, warm, source="history")

    def test_setup_seconds_never_negative(self):
        assert CostObservations(0.5, 1.0).setup_seconds == 0.0

    def test_serial_prediction_scales_with_scenarios(self):
        obs = self.observations()
        assert predict_serial(obs, 10) == pytest.approx(10.0)

    def test_parallel_predictions_include_setup_and_spinup(self):
        obs = self.observations()
        assert predict_thread(obs, 10, 2) > 5 * obs.warm_solve_seconds
        cold_pool = predict_process(obs, 10, 2, pool_is_warm=False)
        warm_pool = predict_process(obs, 10, 2, pool_is_warm=True)
        assert cold_pool > warm_pool

    def test_large_warm_times_pick_a_parallel_backend(self):
        decision = choose_backend(self.observations(), scenarios=40, max_workers=4)
        assert decision.backend in ("thread", "process")
        assert decision.workers > 1
        assert decision.predictions["serial"] == pytest.approx(40.0)

    def test_tiny_batches_stay_serial(self):
        decision = choose_backend(
            CostObservations(5e-4, 1e-4), scenarios=3, max_workers=4
        )
        assert decision.backend == "serial"
        assert decision.workers == 1

    def test_process_unsupported_falls_back_to_thread_pricing(self):
        decision = choose_backend(
            self.observations(), scenarios=40, max_workers=4, process_supported=False
        )
        assert decision.backend in ("serial", "thread")
        assert not any(label.startswith("process") for label in decision.predictions)

    def test_decision_serialises_for_benchmarks(self):
        decision = choose_backend(self.observations(), scenarios=40, max_workers=2)
        payload = decision.as_dict()
        assert payload["backend"] == decision.backend
        assert payload["observations"]["source"] == "history"
        assert "serial" in payload["predictions"]


class TestEngineHistory:
    def test_serial_run_records_history_for_later_auto_dispatch(self):
        engine = sweep_engine()
        engine.run(sweep_specs(), availability(), backend="serial")
        assert engine._cost_observations is not None
        assert engine._cost_observations.source == "history"

    def test_probe_history_not_overwritten(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 4
        )
        engine = sweep_engine()
        engine.run(sweep_specs(), availability(), max_workers=2, backend="auto")
        first = engine._cost_observations
        assert first is not None
        engine.run(sweep_specs(), availability(), backend="serial")
        assert engine._cost_observations is first
