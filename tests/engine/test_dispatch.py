"""Tests for the cost-aware dispatch layer (clamping + backend choice)."""

import warnings

import pytest

from repro.engine import ScenarioBatchEngine, ScenarioSpec
from repro.engine.dispatch import (
    CostObservations,
    choose_backend,
    effective_cpu_count,
    predict_process,
    predict_serial,
    predict_thread,
    resolve_worker_count,
)
from repro.spn import ProbabilityMeasure, generate_tangible_reachability_graph

from tests.spn.nets import machine_repair


def sweep_engine(machines=400):
    return ScenarioBatchEngine(
        generate_tangible_reachability_graph(
            machine_repair(machines=machines, mttf=10.0, mttr=1.0)
        )
    )


def sweep_specs(count=6):
    return [
        ScenarioSpec(name=f"mttf={mttf}", delays={"FAIL": mttf})
        for mttf in (5.0, 8.0, 12.0, 18.0, 27.0, 40.0)[:count]
    ]


def availability():
    return [ProbabilityMeasure("all_up", "#BROKEN == 0")]


class TestEffectiveCores:
    def test_reports_at_least_one_core(self):
        assert effective_cpu_count() >= 1

    def test_honours_affinity_mask(self, monkeypatch):
        monkeypatch.setattr("os.sched_getaffinity", lambda pid: {0, 3}, raising=False)
        assert effective_cpu_count() == 2


class TestWorkerClamp:
    def test_requests_within_cores_pass_through_silently(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 8
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_worker_count(4) == 4

    def test_requests_above_cores_are_clamped_with_warning(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 2
        )
        with pytest.warns(UserWarning, match="clamping max_workers to 2"):
            assert resolve_worker_count(8) == 2

    def test_non_positive_requests_become_one_worker(self):
        assert resolve_worker_count(0) == 1
        assert resolve_worker_count(-3) == 1


class TestAutoOnOneCore:
    """The headline regression: auto must never parallelise on one core."""

    @pytest.fixture(autouse=True)
    def _single_core(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 1
        )

    def test_auto_resolves_to_serial(self):
        engine = sweep_engine()
        with pytest.warns(UserWarning, match="clamping max_workers to 1"):
            engine.run(sweep_specs(), availability(), max_workers=8, backend="auto")
        assert engine.last_run_backend == "serial"

    def test_explicit_jobs_above_core_count_are_clamped(self):
        engine = sweep_engine()
        with pytest.warns(UserWarning, match="clamping max_workers to 1"):
            engine.run(sweep_specs(), availability(), max_workers=8, backend="thread")
        # An explicit backend is honoured, but with a single clamped worker
        # (one contiguous chunk — the serial chain on a pool thread).
        assert engine.last_run_backend == "thread"

    def test_auto_matches_serial_results_exactly(self):
        auto_engine = sweep_engine()
        with pytest.warns(UserWarning, match="clamping"):
            auto = auto_engine.run(
                sweep_specs(), availability(), max_workers=8, backend="auto"
            )
        serial = sweep_engine().run(sweep_specs(), availability(), backend="serial")
        for ours, ref in zip(auto, serial):
            assert ours.value("all_up") == ref.value("all_up")


class TestCostModel:
    def observations(self, cold=2.0, warm=1.0):
        return CostObservations(cold, warm, source="history")

    def test_setup_seconds_never_negative(self):
        assert CostObservations(0.5, 1.0).setup_seconds == 0.0

    def test_serial_prediction_scales_with_scenarios(self):
        obs = self.observations()
        assert predict_serial(obs, 10) == pytest.approx(10.0)

    def test_parallel_predictions_include_setup_and_spinup(self):
        obs = self.observations()
        assert predict_thread(obs, 10, 2) > 5 * obs.warm_solve_seconds
        cold_pool = predict_process(obs, 10, 2, pool_is_warm=False)
        warm_pool = predict_process(obs, 10, 2, pool_is_warm=True)
        assert cold_pool > warm_pool

    def test_large_warm_times_pick_a_parallel_backend(self):
        decision = choose_backend(self.observations(), scenarios=40, max_workers=4)
        assert decision.backend in ("thread", "process")
        assert decision.workers > 1
        assert decision.predictions["serial"] == pytest.approx(40.0)

    def test_tiny_batches_stay_serial(self):
        decision = choose_backend(
            CostObservations(5e-4, 1e-4), scenarios=3, max_workers=4
        )
        assert decision.backend == "serial"
        assert decision.workers == 1

    def test_process_unsupported_falls_back_to_thread_pricing(self):
        decision = choose_backend(
            self.observations(), scenarios=40, max_workers=4, process_supported=False
        )
        assert decision.backend in ("serial", "thread")
        assert not any(label.startswith("process") for label in decision.predictions)

    def test_decision_serialises_for_benchmarks(self):
        decision = choose_backend(self.observations(), scenarios=40, max_workers=2)
        payload = decision.as_dict()
        assert payload["backend"] == decision.backend
        assert payload["observations"]["source"] == "history"
        assert "serial" in payload["predictions"]


class TestEngineHistory:
    def test_serial_run_records_history_for_later_auto_dispatch(self):
        engine = sweep_engine()
        engine.run(sweep_specs(), availability(), backend="serial")
        assert engine._cost_observations is not None
        assert engine._cost_observations.source == "history"

    def test_probe_history_not_overwritten(self, monkeypatch):
        monkeypatch.setattr(
            "repro.engine.dispatch.effective_cpu_count", lambda: 4
        )
        engine = sweep_engine()
        engine.run(sweep_specs(), availability(), max_workers=2, backend="auto")
        first = engine._cost_observations
        assert first is not None
        engine.run(sweep_specs(), availability(), backend="serial")
        assert engine._cost_observations is first


class TestPipelineBudget:
    def make(self, total):
        from repro.engine.dispatch import PipelineBudget

        return PipelineBudget(total)

    def test_generation_fills_whole_budget_without_solves(self):
        budget = self.make(3)
        grants = [budget.acquire_generation() for _ in range(4)]
        assert grants == [True, True, True, False]

    def test_solve_pending_holds_one_worker_back(self):
        budget = self.make(3)
        assert budget.acquire_generation(solve_pending=True)
        assert budget.acquire_generation(solve_pending=True)
        assert not budget.acquire_generation(solve_pending=True)

    def test_single_worker_budget_still_generates(self):
        budget = self.make(1)
        assert budget.acquire_generation(solve_pending=True)
        assert not budget.acquire_generation(solve_pending=True)

    def test_solve_takes_idle_workers_and_never_less_than_one(self):
        budget = self.make(4)
        assert budget.acquire_generation(solve_pending=True)
        assert budget.acquire_solve() == 3
        assert budget.acquire_solve() == 1  # everything busy: still one
        budget.release_solve(3)
        budget.release_generation()
        assert budget.acquire_solve() == 3  # 4 total - 1 still solving

    def test_release_floors_at_zero(self):
        budget = self.make(2)
        budget.release_generation()
        budget.release_solve(5)
        assert budget.snapshot() == {"total": 2, "generating": 0, "solving": 0}

    def test_total_clamped_to_at_least_one(self):
        assert self.make(0).total == 1
        assert self.make(-3).total == 1


class TestGenerationCostProxy:
    def test_monotone_in_structure_size(self):
        from repro.engine.dispatch import estimate_generation_cost
        from repro.spn import CompiledNet

        small = CompiledNet(machine_repair(machines=2))
        large = CompiledNet(machine_repair(machines=6))
        assert estimate_generation_cost(large) > estimate_generation_cost(small)

    def test_positive_even_for_empty_marking(self):
        from repro.engine.dispatch import estimate_generation_cost

        class Hollow:
            initial_marking = ()
            transitions = ()

        assert estimate_generation_cost(Hollow()) > 0.0
