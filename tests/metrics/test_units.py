"""Tests for the unit-safe value objects."""

import pytest

from repro.metrics import Bandwidth, DataSize, Distance, Duration


class TestDuration:
    def test_year_conversion(self):
        assert Duration.from_years(1.0).hours == pytest.approx(8760.0)

    def test_minute_conversion(self):
        assert Duration.from_minutes(30.0).hours == pytest.approx(0.5)

    def test_second_conversion_round_trip(self):
        assert Duration.from_seconds(7200.0).seconds == pytest.approx(7200.0)

    def test_addition_and_scaling(self):
        total = Duration.from_hours(1.0) + Duration.from_minutes(30.0)
        assert total.hours == pytest.approx(1.5)
        assert (2 * Duration.from_hours(3.0)).hours == pytest.approx(6.0)

    def test_ordering(self):
        assert Duration.from_minutes(5.0) < Duration.from_hours(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Duration(-1.0)


class TestDistance:
    def test_meters_round_trip(self):
        assert Distance.from_meters(1500.0).kilometers == pytest.approx(1.5)
        assert Distance.from_kilometers(2.0).meters == pytest.approx(2000.0)

    def test_addition(self):
        assert (Distance(1.0) + Distance(2.0)).kilometers == pytest.approx(3.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Distance(-5.0)


class TestDataSize:
    def test_gigabyte_conversion(self):
        vm_image = DataSize.from_gigabytes(4.0)  # VM size used in the case study
        assert vm_image.megabytes == pytest.approx(4096.0)
        assert vm_image.gigabytes == pytest.approx(4.0)

    def test_bits(self):
        assert DataSize.from_megabytes(1.0).bits == pytest.approx(8.0 * 1024.0**2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DataSize(-1.0)


class TestBandwidth:
    def test_megabit_conversion_round_trip(self):
        link = Bandwidth.from_megabits_per_second(100.0)
        assert link.megabits_per_second == pytest.approx(100.0)

    def test_transfer_time(self):
        link = Bandwidth.from_megabytes_per_second(1.0)
        duration = link.transfer_time(DataSize.from_megabytes(3600.0))
        assert duration.hours == pytest.approx(1.0)

    def test_zero_bandwidth_cannot_transfer(self):
        with pytest.raises(ValueError):
            Bandwidth(0.0).transfer_time(DataSize.from_megabytes(1.0))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Bandwidth(-1.0)
