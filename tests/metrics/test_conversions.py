"""Tests for dependability parameter conversions."""

import math

import pytest

from repro.metrics import (
    availability_from_mttf_mttr,
    equivalent_mttf_mttr,
    exponential_reliability,
    hours_from_minutes,
    hours_from_seconds,
    hours_from_years,
    mean_time_from_rate,
    mttf_mttr_from_availability,
    mttr_from_availability,
    rate_from_mean_time,
)


class TestRateConversions:
    def test_rate_round_trip(self):
        assert mean_time_from_rate(rate_from_mean_time(123.4)) == pytest.approx(123.4)

    def test_rate_of_1000_hours(self):
        assert rate_from_mean_time(1000.0) == pytest.approx(1e-3)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            rate_from_mean_time(0.0)
        with pytest.raises(ValueError):
            mean_time_from_rate(-1.0)


class TestAvailabilityInversion:
    def test_mttf_from_availability_round_trip(self):
        mttf = mttf_mttr_from_availability(0.99, mttr=2.0)
        assert availability_from_mttf_mttr(mttf, 2.0) == pytest.approx(0.99)

    def test_mttr_from_availability_round_trip(self):
        mttr = mttr_from_availability(0.95, mttf=100.0)
        assert availability_from_mttf_mttr(100.0, mttr) == pytest.approx(0.95)

    def test_perfect_availability_gives_zero_mttr(self):
        assert mttr_from_availability(1.0, mttf=10.0) == 0.0

    def test_rejects_degenerate_availability(self):
        with pytest.raises(ValueError):
            mttf_mttr_from_availability(1.0, mttr=1.0)
        with pytest.raises(ValueError):
            mttr_from_availability(0.0, mttf=1.0)


class TestEquivalentMttfMttr:
    def test_consistency_with_availability(self):
        mttf, mttr = equivalent_mttf_mttr(0.999, equivalent_failure_rate=0.01)
        assert mttf == pytest.approx(100.0)
        assert availability_from_mttf_mttr(mttf, mttr) == pytest.approx(0.999)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            equivalent_mttf_mttr(0.99, 0.0)


class TestExponentialReliability:
    def test_at_time_zero(self):
        assert exponential_reliability(100.0, 0.0) == 1.0

    def test_at_mttf(self):
        assert exponential_reliability(100.0, 100.0) == pytest.approx(math.exp(-1.0))

    def test_monotone_decreasing(self):
        values = [exponential_reliability(50.0, t) for t in (0.0, 10.0, 50.0, 200.0)]
        assert values == sorted(values, reverse=True)


class TestTimeUnitHelpers:
    def test_hours_from_years(self):
        assert hours_from_years(1.0) == pytest.approx(8760.0)
        # Disaster mean time of 100 years used in the case study.
        assert hours_from_years(100.0) == pytest.approx(876000.0)

    def test_hours_from_minutes(self):
        # VM start time of 5 minutes used in the case study.
        assert hours_from_minutes(5.0) == pytest.approx(5.0 / 60.0)

    def test_hours_from_seconds(self):
        assert hours_from_seconds(3600.0) == pytest.approx(1.0)

    def test_reject_negative(self):
        with pytest.raises(ValueError):
            hours_from_years(-1.0)
        with pytest.raises(ValueError):
            hours_from_minutes(-1.0)
        with pytest.raises(ValueError):
            hours_from_seconds(-1.0)
