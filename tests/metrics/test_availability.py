"""Tests for availability metrics and nines conversions."""

import math

import pytest

from repro.metrics import (
    AvailabilityResult,
    availability_from_mttf_mttr,
    availability_from_nines,
    downtime_hours_per_month,
    downtime_hours_per_year,
    downtime_minutes_per_year,
    number_of_nines,
    unavailability_from_mttf_mttr,
)


class TestAvailabilityFromMttfMttr:
    def test_basic_value(self):
        assert availability_from_mttf_mttr(99.0, 1.0) == pytest.approx(0.99)

    def test_zero_mttr_gives_perfect_availability(self):
        assert availability_from_mttf_mttr(1000.0, 0.0) == 1.0

    def test_table_vi_operating_system(self):
        # OS: MTTF 4000 h, MTTR 1 h (Table VI).
        assert availability_from_mttf_mttr(4000.0, 1.0) == pytest.approx(4000.0 / 4001.0)

    def test_complements_unavailability(self):
        a = availability_from_mttf_mttr(1234.0, 5.6)
        u = unavailability_from_mttf_mttr(1234.0, 5.6)
        assert a + u == pytest.approx(1.0)

    def test_rejects_non_positive_mttf(self):
        with pytest.raises(ValueError):
            availability_from_mttf_mttr(0.0, 1.0)

    def test_rejects_negative_mttr(self):
        with pytest.raises(ValueError):
            availability_from_mttf_mttr(100.0, -1.0)


class TestNumberOfNines:
    def test_paper_value_table_vii_one_machine(self):
        # Table VII: A = 0.9842914 -> 1.80 nines.
        assert number_of_nines(0.9842914) == pytest.approx(1.80, abs=0.005)

    def test_paper_value_table_vii_rio_brasilia(self):
        # Table VII: A = 0.9997317 -> 3.57 nines.
        assert number_of_nines(0.9997317) == pytest.approx(3.57, abs=0.005)

    def test_three_nines(self):
        assert number_of_nines(0.999) == pytest.approx(3.0)

    def test_perfect_availability_is_infinite(self):
        assert math.isinf(number_of_nines(1.0))

    def test_zero_availability_is_zero_nines(self):
        assert number_of_nines(0.0) == pytest.approx(0.0)

    def test_round_trip_with_inverse(self):
        for nines in (0.5, 1.0, 2.5, 3.57, 5.0):
            assert number_of_nines(availability_from_nines(nines)) == pytest.approx(nines)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            number_of_nines(1.5)
        with pytest.raises(ValueError):
            number_of_nines(-0.1)


class TestDowntime:
    def test_hours_per_year(self):
        assert downtime_hours_per_year(0.999) == pytest.approx(8.76)

    def test_minutes_per_year(self):
        assert downtime_minutes_per_year(0.999) == pytest.approx(8.76 * 60.0)

    def test_hours_per_month(self):
        assert downtime_hours_per_month(0.999) == pytest.approx(0.73)

    def test_perfect_availability_has_no_downtime(self):
        assert downtime_hours_per_year(1.0) == 0.0


class TestAvailabilityResult:
    def test_nines_property(self):
        result = AvailabilityResult(0.99, label="demo")
        assert result.nines == pytest.approx(2.0)
        assert result.unavailability == pytest.approx(0.01)

    def test_improvement_in_nines_against_result(self):
        baseline = AvailabilityResult(0.99)
        improved = AvailabilityResult(0.9999)
        assert improved.improvement_in_nines(baseline) == pytest.approx(2.0)

    def test_improvement_in_nines_against_float(self):
        improved = AvailabilityResult(0.999)
        assert improved.improvement_in_nines(0.99) == pytest.approx(1.0)

    def test_meets_sla(self):
        result = AvailabilityResult(0.9995)
        assert result.meets_sla(0.999)
        assert not result.meets_sla(0.9999)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            AvailabilityResult(1.2)

    def test_str_contains_label_and_nines(self):
        text = str(AvailabilityResult(0.999, label="rio"))
        assert "rio" in text
        assert "nines" in text
