"""Tests for the geography substrate."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network import (
    BRASILIA,
    CALCUTTA,
    NEW_YORK,
    RECIFE,
    RIO_DE_JANEIRO,
    SAO_PAULO,
    TOKYO,
    City,
    city_named,
    haversine_distance,
)


class TestCity:
    def test_invalid_latitude_rejected(self):
        with pytest.raises(ConfigurationError):
            City("Nowhere", 91.0, 0.0)

    def test_invalid_longitude_rejected(self):
        with pytest.raises(ConfigurationError):
            City("Nowhere", 0.0, 181.0)

    def test_distance_to_self_is_zero(self):
        assert RIO_DE_JANEIRO.distance_to(RIO_DE_JANEIRO).kilometers == pytest.approx(0.0)

    def test_distance_is_symmetric(self):
        assert RIO_DE_JANEIRO.distance_to(TOKYO).kilometers == pytest.approx(
            TOKYO.distance_to(RIO_DE_JANEIRO).kilometers
        )


class TestCaseStudyDistances:
    """Great-circle distances of the paper's city pairs (reference values
    from standard geodesic calculators, tolerance 3%)."""

    @pytest.mark.parametrize(
        "destination, expected_km",
        [
            (BRASILIA, 930.0),
            (RECIFE, 1870.0),
            (NEW_YORK, 7770.0),
            (CALCUTTA, 15000.0),
            (TOKYO, 18570.0),
        ],
    )
    def test_distance_from_rio(self, destination, expected_km):
        distance = haversine_distance(RIO_DE_JANEIRO, destination)
        assert distance.kilometers == pytest.approx(expected_km, rel=0.03)

    def test_backup_site_close_to_rio(self):
        assert SAO_PAULO.distance_to(RIO_DE_JANEIRO).kilometers < 450.0

    def test_case_study_ordering_preserved(self):
        """The paper orders the pairs by increasing distance from Rio."""
        distances = [
            RIO_DE_JANEIRO.distance_to(city).kilometers
            for city in (BRASILIA, RECIFE, NEW_YORK, CALCUTTA, TOKYO)
        ]
        assert distances == sorted(distances)


class TestCityRegistry:
    def test_lookup_is_case_insensitive(self):
        assert city_named("tokyo") is TOKYO
        assert city_named("Rio de Janeiro") is RIO_DE_JANEIRO

    def test_unknown_city_rejected(self):
        with pytest.raises(ConfigurationError):
            city_named("Atlantis")
