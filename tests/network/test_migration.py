"""Tests for VM migration-time (MTT) computation."""

import pytest

from repro.metrics import DataSize
from repro.network import MigrationPlanner
from repro.network.geo import BRASILIA, RIO_DE_JANEIRO, SAO_PAULO, TOKYO


class TestMigrationPlanner:
    def test_transfer_time_monotone_in_distance(self):
        planner = MigrationPlanner()
        near = planner.transfer_time(RIO_DE_JANEIRO, BRASILIA, alpha=0.35)
        far = planner.transfer_time(RIO_DE_JANEIRO, TOKYO, alpha=0.35)
        assert far.hours > near.hours

    def test_transfer_time_monotone_in_alpha(self):
        planner = MigrationPlanner()
        slow = planner.transfer_time(RIO_DE_JANEIRO, TOKYO, alpha=0.35)
        fast = planner.transfer_time(RIO_DE_JANEIRO, TOKYO, alpha=0.45)
        assert fast.hours < slow.hours

    def test_transfer_time_scales_with_image_size(self):
        small = MigrationPlanner(vm_image_size=DataSize.from_gigabytes(2.0))
        large = MigrationPlanner(vm_image_size=DataSize.from_gigabytes(4.0))
        ratio = (
            large.transfer_time(RIO_DE_JANEIRO, TOKYO, 0.35).hours
            / small.transfer_time(RIO_DE_JANEIRO, TOKYO, 0.35).hours
        )
        assert ratio == pytest.approx(2.0)

    def test_migration_times_bundle(self):
        planner = MigrationPlanner()
        times = planner.migration_times(RIO_DE_JANEIRO, BRASILIA, SAO_PAULO, alpha=0.40)
        values = times.as_dict()
        assert set(values) == {"MTT_DCS", "MTT_BK1", "MTT_BK2"}
        assert all(value > 0.0 for value in values.values())
        # The backup server (Sao Paulo) is closer to Rio than to Brasilia.
        assert values["MTT_BK1"] < values["MTT_BK2"]

    def test_case_study_backup_paths_shorter_than_long_haul(self):
        planner = MigrationPlanner()
        times = planner.migration_times(RIO_DE_JANEIRO, TOKYO, SAO_PAULO, alpha=0.35)
        values = times.as_dict()
        # Sao Paulo -> Rio is much faster than the Rio <-> Tokyo long haul.
        assert values["MTT_BK1"] < values["MTT_DCS"]
