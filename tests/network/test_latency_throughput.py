"""Tests for the latency and throughput models."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics import DataSize, Distance
from repro.network import LatencyModel, ThroughputModel, validate_alpha
from repro.network.geo import BRASILIA, RIO_DE_JANEIRO, TOKYO


class TestLatencyModel:
    def test_zero_distance_gives_base_rtt(self):
        model = LatencyModel(base_rtt_s=0.004)
        assert model.round_trip_time(Distance(0.0)).seconds == pytest.approx(0.004)

    def test_rtt_grows_linearly_with_distance(self):
        model = LatencyModel(base_rtt_s=0.0)
        short = model.round_trip_time(Distance(1000.0)).seconds
        long = model.round_trip_time(Distance(2000.0)).seconds
        assert long == pytest.approx(2.0 * short)

    def test_intercontinental_rtt_magnitude(self):
        model = LatencyModel()
        rtt = model.round_trip_time(RIO_DE_JANEIRO.distance_to(TOKYO)).seconds
        # Real-world Rio-Tokyo RTTs are in the 250-400 ms range.
        assert 0.2 < rtt < 0.5

    def test_one_way_latency_is_half_rtt(self):
        model = LatencyModel()
        distance = Distance(5000.0)
        assert model.one_way_latency(distance).seconds == pytest.approx(
            model.round_trip_time(distance).seconds / 2.0
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(fibre_speed_km_per_s=0.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(route_factor=0.9)
        with pytest.raises(ConfigurationError):
            LatencyModel(base_rtt_s=-0.1)


class TestThroughputModel:
    def test_throughput_decreases_with_distance(self):
        model = ThroughputModel()
        near = model.throughput(RIO_DE_JANEIRO.distance_to(BRASILIA), alpha=0.35)
        far = model.throughput(RIO_DE_JANEIRO.distance_to(TOKYO), alpha=0.35)
        assert near.bytes_per_second > far.bytes_per_second

    def test_throughput_increases_with_alpha(self):
        model = ThroughputModel()
        distance = RIO_DE_JANEIRO.distance_to(TOKYO)
        slow = model.throughput(distance, alpha=0.35)
        fast = model.throughput(distance, alpha=0.45)
        assert fast.bytes_per_second > slow.bytes_per_second
        assert fast.bytes_per_second / slow.bytes_per_second == pytest.approx(
            0.45 / 0.35
        )

    def test_link_capacity_caps_throughput(self):
        model = ThroughputModel()
        capacity = model.link_capacity.bytes_per_second
        value = model.throughput(Distance(0.1), alpha=1.0)
        assert value.bytes_per_second <= capacity

    def test_transfer_time_of_case_study_vm(self):
        model = ThroughputModel()
        vm = DataSize.from_gigabytes(4.0)
        brasilia = model.transfer_time(vm, RIO_DE_JANEIRO.distance_to(BRASILIA), 0.35)
        tokyo = model.transfer_time(vm, RIO_DE_JANEIRO.distance_to(TOKYO), 0.35)
        # Transfers take minutes-to-hours nearby and hours intercontinentally.
        assert 0.05 < brasilia.hours < 2.0
        assert 2.0 < tokyo.hours < 48.0
        assert tokyo.hours > brasilia.hours

    def test_invalid_alpha_rejected(self):
        model = ThroughputModel()
        with pytest.raises(ConfigurationError):
            model.throughput(Distance(100.0), alpha=0.0)
        with pytest.raises(ConfigurationError):
            model.throughput(Distance(100.0), alpha=1.5)
        with pytest.raises(ConfigurationError):
            validate_alpha(-0.2)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputModel(window_bytes=0.0)
