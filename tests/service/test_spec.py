"""Submission vocabulary: validation, canonical digests, case counting."""

import pytest

from repro.service.spec import GridSpec, JobOptions, SpecError


def minimal(**overrides):
    payload = {"cities": [["Rio de Janeiro", "Brasilia"], ["Rio de Janeiro"]]}
    payload.update(overrides)
    return payload


class TestGridSpecValidation:
    def test_round_trips_through_payload(self):
        spec = GridSpec.from_payload(
            minimal(
                alphas=[0.35, 0.5],
                disaster_years=[50, 100],
                machines=[1, 2],
                l_thresholds=[1],
                backup="both",
                topology="ring",
                required_vms=2,
                max_states=5000,
            )
        )
        again = GridSpec.from_payload(spec.as_payload())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_rejects_non_object(self):
        with pytest.raises(SpecError, match="JSON object"):
            GridSpec.from_payload(["not", "an", "object"])

    def test_rejects_unknown_field(self):
        with pytest.raises(SpecError, match="unknown field.*'citties'"):
            GridSpec.from_payload(minimal(citties=[["Rio de Janeiro"]]))

    def test_requires_cities(self):
        with pytest.raises(SpecError, match="'cities'"):
            GridSpec.from_payload({})

    def test_rejects_empty_city_set(self):
        with pytest.raises(SpecError, match="non-empty array of city names"):
            GridSpec.from_payload({"cities": [[]]})

    def test_rejects_unknown_city(self):
        with pytest.raises(SpecError, match="Atlantis"):
            GridSpec.from_payload({"cities": [["Atlantis"]]})

    def test_rejects_bad_axis_value(self):
        with pytest.raises(SpecError, match="'alphas' values must be float"):
            GridSpec.from_payload(minimal(alphas=["fast"]))

    def test_rejects_bad_backup(self):
        with pytest.raises(SpecError, match="'backup' must be one of"):
            GridSpec.from_payload(minimal(backup="maybe"))

    def test_rejects_non_positive_required_vms(self):
        with pytest.raises(SpecError, match="'required_vms'"):
            GridSpec.from_payload(minimal(required_vms=0))


class TestDigest:
    def test_digest_ignores_options(self):
        spec = GridSpec.from_payload(minimal())
        assert (
            JobOptions.from_payload({"jobs": 4}).as_payload
            is not None
        )
        # The digest is a function of the grid alone.
        assert spec.digest() == GridSpec.from_payload(minimal()).digest()

    def test_digest_changes_with_axes(self):
        base = GridSpec.from_payload(minimal())
        other = GridSpec.from_payload(minimal(machines=[2]))
        assert base.digest() != other.digest()

    def test_digest_stable_against_key_order(self):
        a = GridSpec.from_payload({"cities": [["Rio de Janeiro"]], "backup": "on"})
        b = GridSpec.from_payload({"backup": "on", "cities": [["Rio de Janeiro"]]})
        assert a.digest() == b.digest()


class TestCaseCount:
    def test_single_site_prunes_axes(self):
        spec = GridSpec.from_payload(
            {
                "cities": [["Rio de Janeiro"]],
                "alphas": [0.35, 0.5],
                "machines": [1, 2],
                "disaster_years": [50, 100],
                "l_thresholds": [1, 2],
                "backup": "both",
            }
        )
        # A single site has no alpha, l or backup axis.
        assert spec.case_count() == 2 * 2

    def test_mixed_structures_counted_per_set(self):
        spec = GridSpec.from_payload(
            minimal(machines=[1, 2], alphas=[0.35], backup="both")
        )
        assert spec.case_count() == (2 * 1 * 1 * 1 * 2) + 2

    def test_count_matches_scenarios(self):
        spec = GridSpec.from_payload(minimal(machines=[1, 2], backup="both"))
        assert spec.case_count() == len(spec.scenarios())


class TestJobOptions:
    def test_defaults(self):
        options = JobOptions.from_payload(None)
        assert options.backend == "auto"
        assert options.pipeline and options.dedupe
        assert options.deadline_seconds is None

    def test_rejects_unknown_field(self):
        with pytest.raises(SpecError, match="unknown field"):
            JobOptions.from_payload({"dead_line": 3})

    def test_rejects_bad_deadline(self):
        with pytest.raises(SpecError, match="'deadline_seconds'"):
            JobOptions.from_payload({"deadline_seconds": -1})

    def test_rejects_bad_backend(self):
        with pytest.raises(SpecError, match="'backend'"):
            JobOptions.from_payload({"backend": "gpu"})

    def test_round_trip(self):
        options = JobOptions.from_payload(
            {"jobs": 2, "deadline_seconds": 30, "metadata": {"who": "ci"}}
        )
        assert JobOptions.from_payload(options.as_payload()) == options
