"""Wire-level tests: real HTTP over a loopback port via the client."""

import json
import urllib.request

import pytest

from repro.service import AvailabilityService, ServiceClient, ServiceConfig, ServiceError

TINY = {"cities": [["Rio de Janeiro"]], "machines": [1]}


@pytest.fixture()
def live(tmp_path):
    service = AvailabilityService(
        ServiceConfig(state_dir=tmp_path / "state", port=0)
    )
    host, port = service.start()
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
    try:
        yield service, client
    finally:
        service.stop()


class TestEndpoints:
    def test_healthz_and_readyz(self, live):
        service, client = live
        health = client.health()
        assert health["status"] == "ok"
        assert client.ready() is True
        service.request_drain()
        assert client.ready() is False

    def test_submit_job_results_roundtrip(self, live):
        service, client = live
        answer = client.submit(TINY)
        assert answer["deduplicated"] is False
        job = client.wait(answer["job"]["id"], timeout=120.0)
        assert job["state"] == "done"
        rows = list(client.results(job["id"]))
        assert len(rows) == 1
        assert 0.0 < rows[0]["measures"]["availability"] < 1.0
        # Job list contains it too.
        assert any(item["id"] == job["id"] for item in client.jobs())

    def test_results_carry_job_state_header(self, live):
        service, client = live
        answer = client.submit(TINY)
        job_id = answer["job"]["id"]
        client.wait(job_id, timeout=120.0)
        request = urllib.request.Request(
            client.base_url + f"/v1/jobs/{job_id}/results"
        )
        with urllib.request.urlopen(request, timeout=10.0) as response:
            assert response.headers["X-Job-State"] == "done"
            assert response.headers["Content-Type"] == "application/x-ndjson"
            assert response.read().strip()

    def test_bad_json_is_400(self, live):
        service, client = live
        request = urllib.request.Request(
            client.base_url + "/v1/grids",
            data=b"{broken",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10.0)
        assert caught.value.code == 400
        assert "not valid JSON" in json.loads(caught.value.read())["error"]

    def test_invalid_spec_is_400_with_actionable_error(self, live):
        service, client = live
        with pytest.raises(ServiceError) as caught:
            client.submit({"cities": [["Atlantis"]]})
        assert caught.value.status == 400
        assert "Atlantis" in str(caught.value)

    def test_unknown_routes_and_jobs_are_404(self, live):
        service, client = live
        with pytest.raises(ServiceError) as caught:
            client.job("job-9999-nope")
        assert caught.value.status == 404
        with pytest.raises(ServiceError) as caught:
            client._request("GET", "/v2/nothing")
        assert caught.value.status == 404

    def test_429_sets_retry_after_header(self, tmp_path):
        from repro.engine import faults
        from repro.engine.faults import FaultPlan, FaultSpec

        faults.install(
            FaultPlan(
                faults=(
                    FaultSpec(
                        kind=faults.SLOW_TASK,
                        site=faults.SERVICE_RUN_JOB,
                        delay_seconds=2.0,
                        count=1,
                    ),
                )
            )
        )
        service = AvailabilityService(
            ServiceConfig(state_dir=tmp_path / "state", port=0, queue_depth=1)
        )
        host, port = service.start()
        client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
        try:
            first = client.submit(TINY)
            request = urllib.request.Request(
                client.base_url + "/v1/grids",
                data=json.dumps(
                    {"grid": {"cities": [["Rio de Janeiro"]], "machines": [2]}}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10.0)
            assert caught.value.code == 429
            assert float(caught.value.headers["Retry-After"]) > 0
            # The in-flight job still completes.
            job = client.wait(first["job"]["id"], timeout=120.0)
            assert job["state"] == "done"
        finally:
            faults.clear()
            service.stop()

    def test_cancel_route(self, live):
        service, client = live
        answer = client.submit(TINY)
        job = client.wait(answer["job"]["id"], timeout=120.0)
        with pytest.raises(ServiceError) as caught:
            client.cancel(job["id"])
        assert caught.value.status == 409
