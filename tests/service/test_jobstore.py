"""Durability of the write-ahead job store."""

import json
import os

import pytest

from repro.engine import faults
from repro.engine.faults import FaultPlan, FaultSpec, InjectedFaultError
from repro.service.jobstore import JobRecord, JobStore


def record(job_id="job-0001-abc", digest="abc123", state="queued"):
    return JobRecord(
        id=job_id,
        digest=digest,
        spec={"cities": [["Rio de Janeiro"]]},
        options={"backend": "auto"},
        state=state,
    )


class TestJournal:
    def test_create_then_recover(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(record())
        store.transition("job-0001-abc", "running", attempts=1)
        store.close()

        recovered = JobStore(tmp_path)
        job = recovered.get("job-0001-abc")
        assert job is not None and job.state == "running" and job.attempts == 1
        assert recovered.replayed_transitions == 2

    def test_every_append_is_fsynced(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        store = JobStore(tmp_path)
        store.create(record())
        assert synced, "journal append must fsync before acknowledging"
        count = len(synced)
        store.transition("job-0001-abc", "done")
        assert len(synced) > count
        store.close()

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(record())
        store.create(record("job-0002-def", "def456"))
        store.close()
        journal = tmp_path / "journal.jsonl"
        journal.write_text(journal.read_text() + '{"event": "submitted", "jo')

        recovered = JobStore(tmp_path)
        assert set(recovered.jobs) == {"job-0001-abc", "job-0002-def"}

    def test_duplicate_id_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(record())
        with pytest.raises(ValueError, match="already exists"):
            store.create(record())
        store.close()

    def test_unknown_state_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(record())
        with pytest.raises(ValueError, match="unknown job state"):
            store.transition("job-0001-abc", "exploded")
        store.close()

    def test_store_fault_site_fires_before_write(self, tmp_path):
        store = JobStore(tmp_path)
        faults.install(
            FaultPlan(
                faults=(
                    FaultSpec(
                        kind=faults.TASK_EXCEPTION,
                        site=faults.SERVICE_STORE_APPEND,
                        count=1,
                    ),
                )
            )
        )
        try:
            with pytest.raises(InjectedFaultError):
                store.create(record())
        finally:
            faults.clear()
        # The refused job must not exist anywhere: not in memory...
        assert store.get("job-0001-abc") is None
        # ...and not in the journal either.
        journal = tmp_path / "journal.jsonl"
        assert not journal.exists() or "job-0001-abc" not in journal.read_text()
        store.close()


class TestSnapshot:
    def test_snapshot_compacts_journal(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(record())
        store.transition("job-0001-abc", "done")
        store.snapshot()
        assert (tmp_path / "journal.jsonl").read_text() == ""
        payload = json.loads((tmp_path / "jobs-snapshot.json").read_text())
        assert [job["id"] for job in payload["jobs"]] == ["job-0001-abc"]
        store.close()

        recovered = JobStore(tmp_path)
        assert recovered.get("job-0001-abc").state == "done"
        assert recovered.replayed_transitions == 0

    def test_automatic_compaction_after_n_appends(self, tmp_path):
        store = JobStore(tmp_path, snapshot_every=3)
        for index in range(3):
            store.create(record(f"job-{index:04d}-x", digest=f"d{index}"))
        assert (tmp_path / "jobs-snapshot.json").exists()
        assert (tmp_path / "journal.jsonl").read_text() == ""
        store.close()

    def test_journal_after_snapshot_wins(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(record())
        store.snapshot()
        store.transition("job-0001-abc", "running")
        store.close()
        recovered = JobStore(tmp_path)
        assert recovered.get("job-0001-abc").state == "running"

    def test_corrupt_snapshot_still_replays_journal(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(record())
        store.close()
        (tmp_path / "jobs-snapshot.json").write_text("{corrupt")
        recovered = JobStore(tmp_path)
        assert recovered.get("job-0001-abc") is not None


class TestLookup:
    def test_find_by_digest_skips_failed_and_cancelled(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(record("job-0001-a", "samedigest", state="queued"))
        store.transition("job-0001-a", "failed")
        assert store.find_by_digest("samedigest") is None
        store.create(record("job-0002-a", "samedigest"))
        found = store.find_by_digest("samedigest")
        assert found is not None and found.id == "job-0002-a"
        store.close()

    def test_find_by_digest_prefers_most_recent(self, tmp_path):
        store = JobStore(tmp_path)
        first = record("job-0001-a", "dg")
        first.submitted_at = 100.0
        second = record("job-0002-a", "dg")
        second.submitted_at = 200.0
        store.create(first)
        store.create(second)
        assert store.find_by_digest("dg").id == "job-0002-a"
        store.close()

    def test_job_directory_under_state_dir(self, tmp_path):
        store = JobStore(tmp_path)
        directory = store.job_directory("job-0001-abc")
        assert directory == tmp_path / "jobs" / "job-0001-abc"
        assert directory.is_dir()
        store.close()
