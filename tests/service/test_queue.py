"""Admission-control semantics of the bounded queue."""

import threading

import pytest

from repro.service.queue import AdmissionQueue, QueueFullError


class TestAdmission:
    def test_offer_until_full_then_429_semantics(self):
        queue = AdmissionQueue(depth=2)
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(QueueFullError) as caught:
            queue.offer("c")
        assert caught.value.retry_after > 0

    def test_running_jobs_hold_their_slot(self):
        queue = AdmissionQueue(depth=1)
        queue.offer("a")
        assert queue.lease(timeout=0.1) == "a"
        # Leased (running) still counts against the depth.
        with pytest.raises(QueueFullError):
            queue.offer("b")
        queue.complete("a")
        queue.offer("b")  # slot freed only on completion

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError, match="positive integer"):
            AdmissionQueue(depth=0)


class TestWorkerSide:
    def test_fifo_order(self):
        queue = AdmissionQueue(depth=4)
        for name in ("a", "b", "c"):
            queue.offer(name)
        assert [queue.lease(timeout=0.1) for _ in range(3)] == ["a", "b", "c"]

    def test_lease_times_out_empty(self):
        assert AdmissionQueue(depth=1).lease(timeout=0.05) is None

    def test_requeue_puts_drained_job_at_front(self):
        queue = AdmissionQueue(depth=4)
        queue.offer("a")
        queue.offer("b")
        leased = queue.lease(timeout=0.1)
        queue.requeue(leased, front=True)
        assert queue.lease(timeout=0.1) == "a"

    def test_remove_withdraws_queued_job(self):
        queue = AdmissionQueue(depth=4)
        queue.offer("a")
        assert queue.remove("a") is True
        assert queue.remove("a") is False
        assert queue.open_count() == 0

    def test_force_bypasses_depth_for_recovery(self):
        queue = AdmissionQueue(depth=1)
        queue.offer("a")
        queue.force("recovered", front=True)
        assert queue.open_count() == 2
        assert queue.lease(timeout=0.1) == "recovered"

    def test_close_wakes_blocked_lease(self):
        queue = AdmissionQueue(depth=1)
        results = []

        def worker():
            results.append(queue.lease(timeout=5.0))

        thread = threading.Thread(target=worker)
        thread.start()
        queue.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert results == [None]
