"""In-process behaviour of the availability service (no HTTP)."""

import time

import pytest

from repro.engine import faults
from repro.engine.faults import FaultPlan, FaultSpec
from repro.service import AvailabilityService, ServiceConfig

TINY = {"cities": [["Rio de Janeiro"]], "machines": [1]}


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.clear()


def make_service(tmp_path, **overrides) -> AvailabilityService:
    config = ServiceConfig(state_dir=tmp_path / "state", **overrides)
    return AvailabilityService(config)


def wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


def start_worker(service):
    """Run the worker loop without binding an HTTP server."""
    import threading

    thread = threading.Thread(target=service._worker_loop, daemon=True)
    thread.start()
    service._worker_thread = thread
    return service


def slow_run_plan(delay=2.5, count=1):
    return FaultPlan(
        faults=(
            FaultSpec(
                kind=faults.SLOW_TASK,
                site=faults.SERVICE_RUN_JOB,
                delay_seconds=delay,
                count=count,
            ),
        )
    )


class TestSubmission:
    def test_submit_runs_to_done_with_provenance(self, tmp_path):
        service = start_worker(make_service(tmp_path))
        try:
            status, body = service.submit({"grid": TINY})
            assert status == 202 and body["deduplicated"] is False
            job_id = body["job"]["id"]
            wait_for(
                lambda: service.store.get(job_id).state == "done",
                message="job done",
            )
            job = service.store.get(job_id)
            assert job.summary["cases"] == 1
            assert len(job.summary["groups"]) == 1
            assert job.summary["groups"][0]["backend"]
            shards = service.results_paths(job_id)
            assert shards and shards[0].parent == tmp_path / "state" / "jobs" / job_id
        finally:
            service.stop()

    def test_submit_rejects_invalid_spec(self, tmp_path):
        service = make_service(tmp_path)
        try:
            status, body = service.submit({"grid": {"cities": [["Atlantis"]]}})
            assert status == 400 and "Atlantis" in body["error"]
            status, body = service.submit({"grd": {}})
            assert status == 400 and "unknown field" in body["error"]
            status, body = service.submit(["not a dict"])
            assert status == 400
        finally:
            service.stop()

    def test_resubmission_dedupes_by_digest(self, tmp_path):
        service = start_worker(make_service(tmp_path))
        try:
            _, first = service.submit({"grid": TINY})
            status, second = service.submit({"grid": dict(TINY)})
            assert status == 200 and second["deduplicated"] is True
            assert second["job"]["id"] == first["job"]["id"]
            # Different axes → different digest → a new job.
            other = {"cities": [["Rio de Janeiro"]], "machines": [2]}
            status, third = service.submit({"grid": other})
            assert status == 202 and third["job"]["id"] != first["job"]["id"]
        finally:
            service.stop()

    def test_store_fault_refuses_submission_without_acknowledging(self, tmp_path):
        service = make_service(tmp_path)
        try:
            faults.install(
                FaultPlan(
                    faults=(
                        FaultSpec(
                            kind=faults.TASK_EXCEPTION,
                            site=faults.SERVICE_STORE_APPEND,
                            count=1,
                        ),
                    )
                )
            )
            status, body = service.submit({"grid": TINY})
            assert status == 503 and "job store unavailable" in body["error"]
            assert body["retry_after"] > 0
            assert service.store.jobs == {}
            assert service.queue.open_count() == 0
            # The fault cleared after one charge: the retry is accepted.
            status, body = service.submit({"grid": TINY})
            assert status == 202
        finally:
            service.stop()


class TestAdmissionControl:
    def test_full_queue_refuses_while_inflight_job_finishes(self, tmp_path):
        faults.install(slow_run_plan(delay=2.0, count=1))
        service = start_worker(make_service(tmp_path, queue_depth=1))
        try:
            status, first = service.submit({"grid": TINY})
            assert status == 202
            other = {"cities": [["Rio de Janeiro"]], "machines": [2]}
            status, refusal = service.submit({"grid": other})
            assert status == 429
            assert refusal["retry_after"] > 0
            assert "full" in refusal["error"]
            # The admitted job is not starved by the refusals.
            job_id = first["job"]["id"]
            wait_for(
                lambda: service.store.get(job_id).state == "done",
                message="in-flight job finishing under overload",
            )
            # Capacity freed: the retry is admitted now.
            status, retry = service.submit({"grid": other})
            assert status == 202
        finally:
            service.stop()


class TestFailureHandling:
    def test_run_fault_retries_then_succeeds(self, tmp_path):
        faults.install(
            FaultPlan(
                faults=(
                    FaultSpec(
                        kind=faults.TASK_EXCEPTION,
                        site=faults.SERVICE_RUN_JOB,
                        count=1,
                    ),
                )
            )
        )
        service = start_worker(make_service(tmp_path))
        try:
            _, body = service.submit({"grid": TINY})
            job_id = body["job"]["id"]
            wait_for(
                lambda: service.store.get(job_id).state == "done",
                message="retried job finishing",
            )
            assert service.store.get(job_id).attempts == 2
        finally:
            service.stop()

    def test_run_fault_exhausts_job_retries_into_failed(self, tmp_path):
        faults.install(
            FaultPlan(
                faults=(
                    FaultSpec(
                        kind=faults.TASK_EXCEPTION,
                        site=faults.SERVICE_RUN_JOB,
                        count=10,
                    ),
                )
            )
        )
        service = start_worker(make_service(tmp_path))
        try:
            _, body = service.submit(
                {"grid": TINY, "options": {"job_retries": 1}}
            )
            job_id = body["job"]["id"]
            wait_for(
                lambda: service.store.get(job_id).state == "failed",
                message="job exhausting retries",
            )
            job = service.store.get(job_id)
            assert job.attempts == 2
            assert "InjectedFaultError" in job.error
            # A terminal failure frees its admission slot.
            assert service.queue.open_count() == 0
        finally:
            service.stop()

    def test_deadline_fails_job_with_checkpoint_note(self, tmp_path):
        faults.install(slow_run_plan(delay=2.5, count=1))
        service = start_worker(make_service(tmp_path))
        try:
            _, body = service.submit(
                {"grid": TINY, "options": {"deadline_seconds": 0.3}}
            )
            job_id = body["job"]["id"]
            wait_for(
                lambda: service.store.get(job_id).state == "failed",
                message="deadline expiry",
            )
            assert "deadline exceeded" in service.store.get(job_id).error
        finally:
            service.stop()


class TestCancellation:
    def test_cancel_running_job(self, tmp_path):
        faults.install(slow_run_plan(delay=2.5, count=1))
        service = start_worker(make_service(tmp_path))
        try:
            _, body = service.submit({"grid": TINY})
            job_id = body["job"]["id"]
            wait_for(
                lambda: service.store.get(job_id).state == "running",
                message="job starting",
            )
            status, answer = service.cancel(job_id)
            assert status == 202
            wait_for(
                lambda: service.store.get(job_id).state == "cancelled",
                message="cancellation landing",
            )
        finally:
            service.stop()

    def test_cancel_queued_job_before_start(self, tmp_path):
        faults.install(slow_run_plan(delay=2.5, count=1))
        service = start_worker(make_service(tmp_path, queue_depth=4))
        try:
            service.submit({"grid": TINY})
            other = {"cities": [["Rio de Janeiro"]], "machines": [2]}
            _, body = service.submit({"grid": other})
            queued_id = body["job"]["id"]
            status, answer = service.cancel(queued_id)
            assert status == 200
            assert answer["job"]["state"] == "cancelled"
            assert service.store.get(queued_id).attempts == 0
        finally:
            service.stop()

    def test_cancel_terminal_job_conflicts(self, tmp_path):
        service = start_worker(make_service(tmp_path))
        try:
            _, body = service.submit({"grid": TINY})
            job_id = body["job"]["id"]
            wait_for(lambda: service.store.get(job_id).state == "done")
            status, answer = service.cancel(job_id)
            assert status == 409 and "already done" in answer["error"]
        finally:
            service.stop()

    def test_cancel_unknown_job_404(self, tmp_path):
        service = make_service(tmp_path)
        try:
            status, _ = service.cancel("job-9999-nope")
            assert status == 404
        finally:
            service.stop()


class TestDrainAndRecovery:
    def test_drain_requeues_running_job_and_restart_completes_it(self, tmp_path):
        faults.install(slow_run_plan(delay=2.5, count=1))
        first = start_worker(make_service(tmp_path))
        _, body = first.submit({"grid": TINY})
        job_id = body["job"]["id"]
        wait_for(
            lambda: first.store.get(job_id).state == "running",
            message="job starting before drain",
        )
        first.drain_and_stop(timeout=30.0)
        assert first.store.get(job_id).state == "queued"
        # Draining refuses new submissions.
        status, body = first.submit({"grid": TINY})
        assert status == 503

        faults.clear()
        second = make_service(tmp_path)
        # Recovery (in the constructor) re-admitted the drained job.
        recovered = second.store.get(job_id)
        assert recovered is not None and recovered.state == "queued"
        assert second.queue.open_count() == 1
        start_worker(second)
        try:
            wait_for(
                lambda: second.store.get(job_id).state == "done",
                message="recovered job finishing",
            )
        finally:
            second.stop()

    def test_restart_requeues_job_found_running(self, tmp_path):
        # Simulate a kill -9: a store whose journal says "running" and no
        # process around anymore.
        service = make_service(tmp_path)
        status, body = service.submit({"grid": TINY})
        job_id = body["job"]["id"]
        service.store.transition(job_id, "running", attempts=1)
        service.store.close()
        service.queue.close()

        revived = start_worker(make_service(tmp_path))
        try:
            wait_for(
                lambda: revived.store.get(job_id).state == "done",
                message="interrupted job re-run",
            )
            assert revived.store.get(job_id).attempts == 2
        finally:
            revived.stop()


class TestHealth:
    def test_health_counts_jobs_and_queue(self, tmp_path):
        service = start_worker(make_service(tmp_path, queue_depth=3))
        try:
            _, body = service.submit({"grid": TINY})
            job_id = body["job"]["id"]
            payload = service.health_payload()
            assert payload["queue"]["depth"] == 3
            assert payload["status"] == "ok"
            wait_for(lambda: service.store.get(job_id).state == "done")
            payload = service.health_payload()
            assert payload["jobs"].get("done") == 1
            service.request_drain()
            assert service.health_payload()["status"] == "draining"
        finally:
            service.stop()
