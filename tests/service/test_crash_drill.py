"""The crash drill: kill -9 mid-solve, restart, bit-identical completion.

Runs the real daemon in a subprocess twice over the same state directory:
the first instance is slowed at the ``solve.group`` fault site (so one case
checkpoints and the other is mid-solve), SIGKILLed, and the second instance
recovers the journal, resumes from the checkpoint shards and completes.
The resulting measures must equal an uninterrupted control run **exactly**
(Δ = 0.0, bit-identical floats).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient

GRID = {"cities": [["Rio de Janeiro"]], "machines": [1, 2]}

SLOW_SECOND_SOLVE = json.dumps(
    [
        {
            "kind": "slow_task",
            "site": "solve.group",
            "after": 1,
            "count": 10,
            "delay_seconds": 8.0,
        }
    ]
)


def start_daemon(state_dir: Path, fault_plan=None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    discovery = state_dir / "service.json"
    if discovery.exists():
        discovery.unlink()
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir), "--quiet",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if discovery.exists():
            return process
        if process.poll() is not None:
            raise AssertionError(f"daemon died on startup: {process.returncode}")
        time.sleep(0.1)
    process.kill()
    raise AssertionError("daemon did not write service.json in time")


def client_for(state_dir: Path) -> ServiceClient:
    url = json.loads((state_dir / "service.json").read_text())["url"]
    return ServiceClient(url, timeout=30.0)


def rows_by_name(client: ServiceClient, job_id: str) -> dict:
    return {row["name"]: row for row in client.results(job_id)}


@pytest.mark.slow
def test_kill9_restart_resumes_bit_identically(tmp_path):
    # --- control: uninterrupted run ------------------------------------
    control_state = tmp_path / "control"
    control = start_daemon(control_state)
    try:
        control_client = client_for(control_state)
        job = control_client.submit(GRID)["job"]
        job = control_client.wait(job["id"], timeout=240.0)
        assert job["state"] == "done"
        control_rows = rows_by_name(control_client, job["id"])
        assert len(control_rows) == 2
    finally:
        control.terminate()
        control.wait(timeout=30.0)

    # --- chaos: first case checkpoints, then SIGKILL mid-second-solve ---
    chaos_state = tmp_path / "chaos"
    chaos = start_daemon(chaos_state, fault_plan=SLOW_SECOND_SOLVE)
    chaos_client = client_for(chaos_state)
    job_id = chaos_client.submit(GRID)["job"]["id"]
    shard_dir = chaos_state / "jobs" / job_id
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if list(shard_dir.glob("grid-shard-*.jsonl")):
            break
        time.sleep(0.1)
    else:
        chaos.kill()
        raise AssertionError("no checkpoint shard appeared before the kill")
    os.kill(chaos.pid, signal.SIGKILL)
    chaos.wait(timeout=30.0)
    checkpointed = rows_restored = None

    # --- restart over the same state directory, no fault plan -----------
    revived = start_daemon(chaos_state)
    try:
        revived_client = client_for(chaos_state)
        job = revived_client.wait(job_id, timeout=240.0)
        assert job["state"] == "done"
        assert job["summary"]["restored_cases"] >= 1
        chaos_rows = rows_by_name(revived_client, job_id)
    finally:
        revived.terminate()
        revived.wait(timeout=30.0)

    # --- bit-identical comparison ---------------------------------------
    assert set(chaos_rows) == set(control_rows)
    for name, control_row in control_rows.items():
        for measure, value in control_row["measures"].items():
            delta = abs(chaos_rows[name]["measures"][measure] - value)
            assert delta == 0.0, f"{name}/{measure} drifted by {delta}"
