"""Tests for the Table VII and Figure 7 reproduction harness.

The distributed rows are exercised through a reduced runner (one PM per data
center) so the tests stay fast; the full-scale sweep is run by the benchmark
suite and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.casestudy import (
    DistributedSweepRunner,
    PAPER_TABLE_VII,
    best_configuration,
    distributed_rows,
    figure7_grid,
    reproduce_figure7,
    reproduce_table7,
    single_site_rows,
)
from repro.core import CaseStudyParameters
from repro.core.scenarios import CITY_PAIRS
from repro.metrics import number_of_nines


@pytest.fixture(scope="module")
def small_runner():
    return DistributedSweepRunner(
        parameters=CaseStudyParameters(required_running_vms=1),
        machines_per_datacenter=1,
    )


class TestPaperReferenceValues:
    def test_all_eight_rows_published(self):
        assert len(PAPER_TABLE_VII) == 8

    def test_published_nines_match_paper_column(self):
        # The paper reports 1.80 / 3.57 nines for these rows.
        assert number_of_nines(PAPER_TABLE_VII["Cloud system with one machine"]) == pytest.approx(1.80, abs=0.01)
        assert number_of_nines(
            PAPER_TABLE_VII["Baseline architecture: Rio de Janeiro - Brasilia"]
        ) == pytest.approx(3.57, abs=0.01)

    def test_paper_orders_distributed_by_distance(self):
        distributed = [
            PAPER_TABLE_VII[f"Baseline architecture: Rio de Janeiro - {city}"]
            for city in ("Brasilia", "Recife", "New York", "Calcutta", "Tokyo")
        ]
        assert distributed == sorted(distributed, reverse=True)


class TestSingleSiteRows:
    def test_three_rows_with_published_counterparts(self):
        rows = single_site_rows()
        assert len(rows) == 3
        assert all(row.paper_availability is not None for row in rows)

    def test_shape_more_machines_higher_availability(self):
        rows = single_site_rows()
        values = [row.measured.availability for row in rows]
        assert values[0] < values[1] <= values[2] + 1e-9

    def test_single_site_rows_are_disaster_limited(self):
        # All single-site architectures sit below the ~0.9901 disaster ceiling.
        for row in single_site_rows():
            assert row.measured.availability < 0.9902

    def test_measured_close_to_paper(self):
        for row in single_site_rows():
            assert row.nines_difference == pytest.approx(0.0, abs=0.35)


class TestDistributedRows:
    def test_rows_produced_for_every_pair(self, small_runner):
        rows = distributed_rows(small_runner)
        assert len(rows) == 5
        assert all(row.measured.availability > 0.99 for row in rows)

    def test_distance_ordering_matches_paper(self, small_runner):
        rows = distributed_rows(small_runner)
        values = [row.measured.availability for row in rows]
        assert values[0] >= values[1] >= values[2] >= values[3] >= values[4]

    def test_reproduce_table7_combines_both_groups(self, small_runner):
        rows = reproduce_table7(small_runner)
        assert len(rows) == 8
        distributed = rows[3:]
        single = rows[:3]
        assert min(r.measured.availability for r in distributed) > max(
            r.measured.availability for r in single
        )

    def test_reproduce_table7_can_skip_distributed(self):
        assert len(reproduce_table7(include_distributed=False)) == 3


class TestTable7CachedOrchestration:
    def test_single_site_rows_populate_and_reuse_the_cache(self, tmp_path, monkeypatch):
        """The three baselines no longer bypass the TRGCache (old bug)."""
        from repro.casestudy.grid import scenario_case
        from repro.core.scenarios import single_datacenter_baselines
        from repro.engine import ScenarioGridOrchestrator, TRGCache
        from repro.engine.cache import structure_fingerprint
        from repro.spn.enabling import CompiledNet

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = TRGCache()
        assert not cache.entries()
        first = single_site_rows()
        assert len(cache.entries()) == 3
        # Every baseline's graph is now loadable straight from disk (keyed
        # by rateless structure, as the orchestrator stores them).
        orchestrator = ScenarioGridOrchestrator()
        for scenario in single_datacenter_baselines():
            case = scenario_case(scenario)
            canonical_id = (
                case.canonicalizer.build().cache_id if case.canonicalizer else None
            )
            compiled = CompiledNet(case.net)
            key = orchestrator._group_digest(
                structure_fingerprint(
                    compiled, include_rates=False, include_name=False
                ),
                canonical_id,
            )
            assert cache.load(compiled, 500_000, key=key) is not None
        second = single_site_rows()
        for before, after in zip(first, second):
            assert before.measured.availability == after.measured.availability

    def test_single_site_rows_match_cold_model_solve(self):
        """Orchestrated baselines agree with the old per-model cold path."""
        from repro.core.scenarios import single_datacenter_baselines

        rows = single_site_rows(use_cache=False)
        for scenario, row in zip(single_datacenter_baselines(), rows):
            model = scenario.build_model()
            reference = model.availability().availability
            assert abs(reference - row.measured.availability) < 1e-9


class TestFigure7:
    def test_grid_restriction(self):
        scenarios = figure7_grid(city_pairs=CITY_PAIRS[:1], alphas=[0.35], disaster_years=[100.0, 300.0])
        assert len(scenarios) == 2

    def test_points_report_improvement_over_baseline(self, small_runner):
        points = reproduce_figure7(
            small_runner,
            city_pairs=CITY_PAIRS[:1],
            alphas=[0.35, 0.45],
            disaster_years=[100.0, 300.0],
        )
        assert len(points) == 4
        baseline = [p for p in points if p.is_baseline]
        assert len(baseline) == 1
        assert baseline[0].improvement_over_baseline == pytest.approx(0.0)
        assert all(p.improvement_over_baseline >= -1e-9 for p in points)

    def test_improvement_grows_with_disaster_mean_time(self, small_runner):
        points = reproduce_figure7(
            small_runner,
            city_pairs=CITY_PAIRS[:1],
            alphas=[0.35],
            disaster_years=[100.0, 200.0, 300.0],
        )
        ordered = sorted(points, key=lambda p: p.disaster_mean_time_years)
        improvements = [p.improvement_over_baseline for p in ordered]
        assert improvements == sorted(improvements)

    def test_best_configuration_prefers_rare_disasters_and_fast_network(self, small_runner):
        points = reproduce_figure7(
            small_runner,
            city_pairs=CITY_PAIRS[:1],
            alphas=[0.35, 0.45],
            disaster_years=[100.0, 300.0],
        )
        best = best_configuration(points)
        assert best.disaster_mean_time_years == 300.0
        assert best.alpha == 0.45

    def test_best_configuration_requires_points(self):
        with pytest.raises(ValueError):
            best_configuration([])
