"""Tests for the shared-state-space sweep runner.

The full two-PM-per-data-center configuration is exercised by the benchmark
suite; here the runner is instantiated with one PM per data center so the
whole module runs in a few seconds while still covering the re-rating logic.
"""

import pytest

from repro.casestudy import DistributedSweepRunner
from repro.core import CaseStudyParameters, DistributedScenario
from repro.network import BRASILIA, RIO_DE_JANEIRO, TOKYO


@pytest.fixture(scope="module")
def runner():
    parameters = CaseStudyParameters(required_running_vms=1)
    return DistributedSweepRunner(parameters=parameters, machines_per_datacenter=1)


def scenario(second=BRASILIA, alpha=0.35, years=100.0):
    return DistributedScenario(
        RIO_DE_JANEIRO, second, alpha=alpha, disaster_mean_time_years=years
    )


class TestScenarioDelays:
    def test_delay_mapping_covers_disasters_and_migrations(self, runner):
        delays = runner.scenario_delays(scenario(years=200.0))
        assert set(delays) == {"DC_1_F", "DC_2_F", "TRE_12", "TRE_21", "TBE_12", "TBE_21"}
        assert delays["DC_1_F"] == pytest.approx(200.0 * 8760.0)

    def test_longer_distance_means_longer_migration_delay(self, runner):
        near = runner.scenario_delays(scenario(second=BRASILIA))
        far = runner.scenario_delays(scenario(second=TOKYO))
        assert far["TRE_12"] > near["TRE_12"]

    def test_higher_alpha_means_shorter_migration_delay(self, runner):
        slow = runner.scenario_delays(scenario(alpha=0.35))
        fast = runner.scenario_delays(scenario(alpha=0.45))
        assert fast["TRE_12"] < slow["TRE_12"]


class TestEvaluation:
    def test_graph_is_generated_once_and_reused(self, runner):
        first = runner.graph()
        second = runner.graph()
        assert first is second

    def test_evaluation_matches_direct_model_solution(self, runner):
        target = scenario(second=BRASILIA, alpha=0.40, years=200.0)
        via_runner = runner.evaluate(target).availability.availability

        parameters = CaseStudyParameters(required_running_vms=1).with_disaster_mean_time(200.0)
        from repro.core.datacenter import two_datacenter_spec
        from repro.core import CloudSystemModel
        from repro.core.scenarios import BACKUP_LOCATION

        spec = two_datacenter_spec(
            first_location=RIO_DE_JANEIRO,
            second_location=BRASILIA,
            backup_location=BACKUP_LOCATION,
            machines_per_datacenter=1,
            required_running_vms=1,
        )
        direct = CloudSystemModel(spec=spec, parameters=parameters, alpha=0.40).availability()
        assert via_runner == pytest.approx(direct.availability, rel=1e-9)

    def test_symmetric_lumping_matches_full_graph(self):
        parameters = CaseStudyParameters(required_running_vms=1)
        lumped = DistributedSweepRunner(
            parameters=parameters, machines_per_datacenter=1, symmetry_reduction=True
        )
        full = DistributedSweepRunner(
            parameters=parameters, machines_per_datacenter=1, symmetry_reduction=False
        )
        target = scenario()
        assert lumped.evaluate(target).availability.availability == pytest.approx(
            full.evaluate(target).availability.availability, rel=1e-9
        )

    def test_monotonicity_in_distance(self, runner):
        near = runner.evaluate(scenario(second=BRASILIA))
        far = runner.evaluate(scenario(second=TOKYO))
        assert far.availability.availability < near.availability.availability

    def test_monotonicity_in_disaster_mean_time(self, runner):
        frequent = runner.evaluate(scenario(years=100.0))
        rare = runner.evaluate(scenario(years=300.0))
        assert rare.availability.availability > frequent.availability.availability

    def test_evaluate_many(self, runner):
        evaluations = runner.evaluate_many([scenario(), scenario(alpha=0.45)])
        assert len(evaluations) == 2
        assert all(e.number_of_states == runner.graph().number_of_states for e in evaluations)

    def test_invalid_disaster_mean_time_rejected(self, runner):
        from repro.exceptions import ConfigurationError

        bad = DistributedScenario(
            RIO_DE_JANEIRO, BRASILIA, disaster_mean_time_years=-1.0
        )
        with pytest.raises(ConfigurationError):
            runner.evaluate(bad)


class TestMachineCountMismatch:
    """A scenario pinning a machine count can never evaluate on a runner
    whose shared structure has a different one (the silent-mismatch bug)."""

    def test_mismatched_scenario_rejected(self, runner):
        from repro.exceptions import ConfigurationError

        mismatched = DistributedScenario(
            RIO_DE_JANEIRO, BRASILIA, machines_per_datacenter=2
        )
        with pytest.raises(ConfigurationError, match="machine"):
            runner.scenario_spec(mismatched)
        with pytest.raises(ConfigurationError, match="machine"):
            runner.evaluate(mismatched)
        with pytest.raises(ConfigurationError, match="machine"):
            runner.evaluate_many([mismatched])

    def test_matching_scenario_accepted(self, runner):
        matching = DistributedScenario(
            RIO_DE_JANEIRO, BRASILIA, machines_per_datacenter=1
        )
        assert runner.scenario_spec(matching).name == matching.label

    def test_unpinned_scenario_inherits_the_runner_count(self, runner):
        spec = runner.scenario_spec(scenario())
        assert spec.name == scenario().label

    def test_runner_reference_model_uses_configured_count(self, runner):
        assert len(runner.reference_model().spec.physical_machines) == 2
