"""Tests for the sensitivity and ablation experiments."""

import pytest

from repro.casestudy import AblationStudy, SensitivityAnalysis
from repro.casestudy.sensitivity import COMPONENT_NAMES, default_model_factory
from repro.core import CaseStudyParameters, CloudSystemModel, single_datacenter_spec
from repro.exceptions import ConfigurationError


def small_model_factory(parameters):
    """Two machines in one data center: small state space for fast tests."""
    return CloudSystemModel(
        spec=single_datacenter_spec(
            machines=2,
            vms_per_machine=parameters.vms_per_physical_machine,
            required_running_vms=parameters.required_running_vms,
        ),
        parameters=parameters,
    )


class TestSensitivityAnalysis:
    def test_improving_mttf_never_hurts(self):
        analysis = SensitivityAnalysis(
            model_factory=small_model_factory,
            factor=2.0,
            components=["physical_machine", "operating_system", "virtual_machine"],
        )
        for entry in analysis.run():
            assert entry.availability_delta >= -1e-12

    def test_degrading_mttf_never_helps(self):
        analysis = SensitivityAnalysis(
            model_factory=small_model_factory,
            factor=0.5,
            components=["physical_machine", "switch"],
        )
        for entry in analysis.run():
            assert entry.availability_delta <= 1e-12

    def test_entries_sorted_by_impact(self):
        analysis = SensitivityAnalysis(
            model_factory=small_model_factory,
            components=["physical_machine", "router", "nas"],
        )
        entries = analysis.run()
        impacts = [abs(entry.availability_delta) for entry in entries]
        assert impacts == sorted(impacts, reverse=True)

    def test_network_components_matter_less_than_machines(self):
        analysis = SensitivityAnalysis(
            model_factory=small_model_factory,
            components=["physical_machine", "router"],
        )
        entries = {entry.component: entry for entry in analysis.run()}
        assert abs(entries["physical_machine"].availability_delta) > abs(
            entries["router"].availability_delta
        )

    def test_mttr_perturbation_direction(self):
        analysis = SensitivityAnalysis(
            model_factory=small_model_factory,
            components=["physical_machine"],
            perturb="mttr",
            factor=2.0,
        )
        (entry,) = analysis.run()
        assert entry.availability_delta < 0.0
        assert entry.parameter == "mttr"

    def test_default_factory_uses_four_machine_site(self):
        model = default_model_factory(CaseStudyParameters())
        assert len(model.spec.physical_machines) == 4

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            SensitivityAnalysis(factor=1.0)
        with pytest.raises(ConfigurationError):
            SensitivityAnalysis(components=["gpu"])
        with pytest.raises(ConfigurationError):
            SensitivityAnalysis(perturb="cost")

    def test_nines_delta_consistent_with_availability_delta(self):
        analysis = SensitivityAnalysis(
            model_factory=small_model_factory, components=["physical_machine"]
        )
        (entry,) = analysis.run()
        assert (entry.nines_delta > 0) == (entry.availability_delta > 0)


class TestAblationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return AblationStudy()

    def test_reference_configuration(self, study):
        reference = study.reference()
        assert reference.name == "reference"
        assert reference.availability.availability > 0.999

    def test_removing_backup_server_reduces_availability(self, study):
        reference = study.reference()
        ablated = study.without_backup_server()
        assert ablated.availability.availability <= reference.availability.availability

    def test_warm_pool_improves_availability(self, study):
        reference = study.reference()
        warmed = study.with_warm_pool(1)
        assert warmed.availability.availability >= reference.availability.availability

    def test_stricter_threshold_reduces_availability(self, study):
        reference = study.reference()
        strict = study.with_threshold(2)
        assert strict.availability.availability < reference.availability.availability

    def test_slower_vm_start_reduces_availability(self, study):
        fast = study.with_vm_start_time(5.0)
        slow = study.with_vm_start_time(60.0)
        assert slow.availability.availability <= fast.availability.availability

    def test_default_suite_contains_reference(self, study):
        results = study.run_default_suite()
        assert any(result.name == "reference" for result in results)
        assert len(results) >= 4
        assert len({result.name for result in results}) == len(results)
