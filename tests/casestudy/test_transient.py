"""Tests for the mission-window availability sweep (new transient workload)."""

import numpy as np
import pytest

from repro.casestudy import DistributedSweepRunner, reproduce_transient
from repro.casestudy.transient import mission_grid, vm_start_specs
from repro.core import CaseStudyParameters
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def runner():
    return DistributedSweepRunner(
        parameters=CaseStudyParameters(required_running_vms=1),
        machines_per_datacenter=1,
    )


@pytest.fixture(scope="module")
def curves(runner):
    return reproduce_transient(
        runner, minutes=(5.0, 60.0), window_hours=12.0, points=4
    )


class TestMissionGrid:
    def test_grid_spans_zero_to_window(self):
        grid = mission_grid(24.0, 5)
        assert grid[0] == 0.0
        assert grid[-1] == 24.0
        assert grid.size == 5

    def test_invalid_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            mission_grid(0.0, 5)
        with pytest.raises(ConfigurationError):
            mission_grid(24.0, 1)


class TestVmStartSpecs:
    def test_one_spec_per_start_time_with_metadata(self, runner):
        specs = vm_start_specs(runner, (5.0, 30.0))
        assert [spec.metadata["minutes"] for spec in specs] == [5.0, 30.0]
        assert all(spec.rates for spec in specs)

    def test_specs_differ_only_in_vm_start_rate(self, runner):
        fast, slow = vm_start_specs(runner, (5.0, 60.0))
        differing = {
            name
            for name in fast.rates
            if fast.rates[name] != pytest.approx(slow.rates[name])
        }
        assert differing
        assert all(name.startswith("VM_STRT") for name in differing)

    def test_non_positive_start_time_rejected(self, runner):
        with pytest.raises(ConfigurationError):
            vm_start_specs(runner, (0.0,))


class TestReproduceTransient:
    def test_curve_shapes_and_bounds(self, curves):
        for curve in curves:
            assert curve.times_hours.shape == (4,)
            assert curve.point_availability.shape == (4,)
            assert curve.interval_availability.shape == (4,)
            assert np.all(curve.point_availability >= 0.0)
            assert np.all(curve.point_availability <= 1.0)

    def test_starts_fully_available(self, curves):
        for curve in curves:
            assert curve.point_availability[0] == pytest.approx(1.0)
            assert curve.interval_availability[0] == pytest.approx(1.0)

    def test_point_availability_decreases_over_the_mission(self, curves):
        """From the fully-up initial marking the availability can only decay
        towards steady state on this window."""
        for curve in curves:
            assert np.all(np.diff(curve.point_availability) <= 1e-12)

    def test_interval_availability_dominates_point(self, curves):
        """For a decaying availability curve the running time-average stays
        above the instantaneous value."""
        for curve in curves:
            assert np.all(
                curve.interval_availability >= curve.point_availability - 1e-12
            )

    def test_slower_vm_start_lowers_mission_availability(self, curves):
        fast, slow = curves
        assert fast.vm_start_minutes < slow.vm_start_minutes
        assert (
            fast.mission_interval_availability
            > slow.mission_interval_availability
        )
        assert fast.mission_point_availability > slow.mission_point_availability

    def test_runs_as_one_engine_batch(self, runner, curves):
        """The sweep shares the runner's state space (one generation)."""
        assert all(
            curve.number_of_states == runner.engine().number_of_states
            for curve in curves
        )
