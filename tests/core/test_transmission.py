"""Tests for the TRANSMISSION_COMPONENT block (Figure 4 / Tables IV-V)."""

import pytest

from repro.core import (
    DataCenterSpec,
    PhysicalMachineSpec,
    TransmissionParameters,
    build_transmission_component,
)
from repro.core.transmission import backup_transfer_place, transfer_place
from repro.exceptions import ModelError


PARAMS = TransmissionParameters(
    datacenter_to_datacenter=0.5, backup_to_first=0.2, backup_to_second=0.4
)


def specs():
    first = DataCenterSpec(index=1)
    second = DataCenterSpec(index=2)
    first_machines = (
        PhysicalMachineSpec(index=1, datacenter_index=1, vm_capacity=2, initial_vms=1),
        PhysicalMachineSpec(index=2, datacenter_index=1, vm_capacity=2, initial_vms=1),
    )
    second_machines = (
        PhysicalMachineSpec(index=3, datacenter_index=2, vm_capacity=2, initial_vms=1),
        PhysicalMachineSpec(index=4, datacenter_index=2, vm_capacity=2, initial_vms=1),
    )
    return first, second, first_machines, second_machines


def build(has_backup=True, l=1):
    first, second, first_machines, second_machines = specs()
    return build_transmission_component(
        first, second, first_machines, second_machines, PARAMS,
        has_backup_server=has_backup, minimum_operational_pms=l,
    )


class TestStructure:
    def test_paper_transition_names_present(self):
        net = build()
        names = set(net.transition_names)
        assert {"TRI_12", "TRI_21", "TRE_12", "TRE_21", "TBI_12", "TBI_21", "TBE_12", "TBE_21"} <= names

    def test_transfer_places_created(self):
        net = build()
        assert transfer_place(1, 2) in net.place_names
        assert backup_transfer_place(2, 1) in net.place_names

    def test_mtt_values_match_table_v(self):
        net = build()
        assert net.transition("TRE_12").delay == 0.5
        assert net.transition("TRE_21").delay == 0.5
        assert net.transition("TBE_12").delay == 0.4  # backup -> DC2 uses MTT_BK2
        assert net.transition("TBE_21").delay == 0.2  # backup -> DC1 uses MTT_BK1

    def test_without_backup_server(self):
        net = build(has_backup=False)
        names = set(net.transition_names)
        assert "TBI_12" not in names and "TBE_21" not in names
        assert "TRI_12" in names

    def test_direct_guard_references_table_iv_places(self):
        net = build()
        guard = net.transition("TRI_12").guard
        places = guard.places()
        assert {"OSPM_1_UP", "OSPM_2_UP", "OSPM_3_UP", "OSPM_4_UP"} <= places
        assert {"NAS_NET_2_UP", "DC_2_UP"} <= places

    def test_backup_guard_requires_backup_server_and_source_disaster(self):
        net = build()
        guard = net.transition("TBI_12").guard
        places = guard.places()
        assert "BKP_UP" in places
        assert {"NAS_NET_1_UP", "DC_1_UP"} <= places
        assert {"NAS_NET_2_UP", "DC_2_UP"} <= places

    def test_migration_threshold_l_appears_in_guard(self):
        net = build(l=2)
        source = net.transition("TRI_12").guard.to_source()
        assert "< 2" in source

    def test_same_datacenter_rejected(self):
        first, _, machines, _ = specs()
        with pytest.raises(ModelError):
            build_transmission_component(first, first, machines, machines, PARAMS)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ModelError):
            build(l=0)

    def test_invalid_mtt_rejected(self):
        with pytest.raises(ModelError):
            TransmissionParameters(0.0, 1.0, 1.0)


class TestGuardSemantics:
    """Evaluate the guards directly against hand-built markings."""

    def marking(self, **overrides):
        base = {
            "OSPM_1_UP": 1,
            "OSPM_2_UP": 1,
            "OSPM_3_UP": 1,
            "OSPM_4_UP": 1,
            "NAS_NET_1_UP": 1,
            "NAS_NET_2_UP": 1,
            "DC_1_UP": 1,
            "DC_2_UP": 1,
            "BKP_UP": 1,
        }
        base.update(overrides)
        return base

    def evaluate(self, transition_name, marking):
        from repro.expressions import evaluate

        net = build()
        return evaluate(net.transition(transition_name).guard, marking)

    def test_direct_migration_disabled_in_nominal_state(self):
        assert self.evaluate("TRI_12", self.marking()) is False

    def test_direct_migration_enabled_when_source_pms_exhausted(self):
        marking = self.marking(OSPM_1_UP=0, OSPM_2_UP=0)
        assert self.evaluate("TRI_12", marking) is True

    def test_direct_migration_disabled_when_destination_unhealthy(self):
        marking = self.marking(OSPM_1_UP=0, OSPM_2_UP=0, DC_2_UP=0)
        assert self.evaluate("TRI_12", marking) is False

    def test_direct_migration_disabled_during_source_disaster(self):
        # A destroyed data center cannot push its images directly; the backup
        # server path takes over (Section III).
        marking = self.marking(OSPM_1_UP=0, OSPM_2_UP=0, DC_1_UP=0)
        assert self.evaluate("TRI_12", marking) is False
        assert self.evaluate("TBI_12", marking) is True

    def test_backup_path_requires_backup_server(self):
        marking = self.marking(DC_1_UP=0, BKP_UP=0)
        assert self.evaluate("TBI_12", marking) is False

    def test_backup_path_triggered_by_network_loss(self):
        marking = self.marking(NAS_NET_1_UP=0)
        assert self.evaluate("TBI_12", marking) is True

    def test_backup_path_needs_healthy_destination(self):
        marking = self.marking(DC_1_UP=0, OSPM_3_UP=0, OSPM_4_UP=0)
        assert self.evaluate("TBI_12", marking) is False

    def test_symmetric_paths(self):
        marking = self.marking(OSPM_3_UP=0, OSPM_4_UP=0)
        assert self.evaluate("TRI_21", marking) is True
        assert self.evaluate("TRI_12", marking) is False
