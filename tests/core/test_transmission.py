"""Tests for the TRANSMISSION_COMPONENT block (Figure 4 / Tables IV-V)."""

import pytest

from repro.core import (
    DataCenterSpec,
    PhysicalMachineSpec,
    TransmissionParameters,
    build_transmission_component,
    build_transmission_network,
    topology_pairs,
)
from repro.core.transmission import backup_transfer_place, transfer_place
from repro.exceptions import ModelError


PARAMS = TransmissionParameters(
    datacenter_to_datacenter=0.5, backup_to_first=0.2, backup_to_second=0.4
)


def specs():
    first = DataCenterSpec(index=1)
    second = DataCenterSpec(index=2)
    first_machines = (
        PhysicalMachineSpec(index=1, datacenter_index=1, vm_capacity=2, initial_vms=1),
        PhysicalMachineSpec(index=2, datacenter_index=1, vm_capacity=2, initial_vms=1),
    )
    second_machines = (
        PhysicalMachineSpec(index=3, datacenter_index=2, vm_capacity=2, initial_vms=1),
        PhysicalMachineSpec(index=4, datacenter_index=2, vm_capacity=2, initial_vms=1),
    )
    return first, second, first_machines, second_machines


def build(has_backup=True, l=1):
    first, second, first_machines, second_machines = specs()
    return build_transmission_component(
        first, second, first_machines, second_machines, PARAMS,
        has_backup_server=has_backup, minimum_operational_pms=l,
    )


class TestStructure:
    def test_paper_transition_names_present(self):
        net = build()
        names = set(net.transition_names)
        assert {"TRI_12", "TRI_21", "TRE_12", "TRE_21", "TBI_12", "TBI_21", "TBE_12", "TBE_21"} <= names

    def test_transfer_places_created(self):
        net = build()
        assert transfer_place(1, 2) in net.place_names
        assert backup_transfer_place(2, 1) in net.place_names

    def test_mtt_values_match_table_v(self):
        net = build()
        assert net.transition("TRE_12").delay == 0.5
        assert net.transition("TRE_21").delay == 0.5
        assert net.transition("TBE_12").delay == 0.4  # backup -> DC2 uses MTT_BK2
        assert net.transition("TBE_21").delay == 0.2  # backup -> DC1 uses MTT_BK1

    def test_without_backup_server(self):
        net = build(has_backup=False)
        names = set(net.transition_names)
        assert "TBI_12" not in names and "TBE_21" not in names
        assert "TRI_12" in names

    def test_direct_guard_references_table_iv_places(self):
        net = build()
        guard = net.transition("TRI_12").guard
        places = guard.places()
        assert {"OSPM_1_UP", "OSPM_2_UP", "OSPM_3_UP", "OSPM_4_UP"} <= places
        assert {"NAS_NET_2_UP", "DC_2_UP"} <= places

    def test_backup_guard_requires_backup_server_and_source_disaster(self):
        net = build()
        guard = net.transition("TBI_12").guard
        places = guard.places()
        assert "BKP_UP" in places
        assert {"NAS_NET_1_UP", "DC_1_UP"} <= places
        assert {"NAS_NET_2_UP", "DC_2_UP"} <= places

    def test_migration_threshold_l_appears_in_guard(self):
        net = build(l=2)
        source = net.transition("TRI_12").guard.to_source()
        assert "< 2" in source

    def test_same_datacenter_rejected(self):
        first, _, machines, _ = specs()
        with pytest.raises(ModelError):
            build_transmission_component(first, first, machines, machines, PARAMS)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ModelError):
            build(l=0)

    def test_invalid_mtt_rejected(self):
        with pytest.raises(ModelError):
            TransmissionParameters(0.0, 1.0, 1.0)


def _network_fixture(count, topology="mesh", has_backup=True, l=1):
    datacenters = [DataCenterSpec(index=i) for i in range(1, count + 1)]
    machines = {}
    next_pm = 1
    for dc in datacenters:
        machines[dc.index] = tuple(
            PhysicalMachineSpec(
                index=next_pm + offset,
                datacenter_index=dc.index,
                vm_capacity=2,
                initial_vms=1,
            )
            for offset in range(2)
        )
        next_pm += 2
    pairs = topology_pairs(count, topology)
    direct_times = {pair: 0.5 for pair in pairs}
    backup_times = {dc.index: 0.1 * dc.index for dc in datacenters}
    return build_transmission_network(
        datacenters,
        machines,
        direct_times,
        backup_times,
        topology=topology,
        has_backup_server=has_backup,
        minimum_operational_pms=l,
    )


class TestTopologyPairs:
    def test_mesh_connects_every_ordered_pair(self):
        assert set(topology_pairs(3, "mesh")) == {
            (1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2)
        }

    def test_ring_connects_cycle_neighbours_only(self):
        pairs = set(topology_pairs(4, "ring"))
        assert (1, 2) in pairs and (4, 1) in pairs
        assert (1, 3) not in pairs and (2, 4) not in pairs
        assert len(pairs) == 8

    def test_two_datacenters_mesh_equals_ring(self):
        assert set(topology_pairs(2, "mesh")) == set(topology_pairs(2, "ring"))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ModelError):
            topology_pairs(3, "hypercube")

    def test_single_datacenter_rejected(self):
        with pytest.raises(ModelError):
            topology_pairs(1)


class TestTransmissionNetwork:
    def test_two_datacenter_network_is_identical_to_component(self):
        """The N-DC builder must emit byte-for-byte the paper's 2-DC block."""
        first, second, first_machines, second_machines = specs()
        component = build_transmission_component(
            first, second, first_machines, second_machines, PARAMS
        )
        network = build_transmission_network(
            (first, second),
            {1: first_machines, 2: second_machines},
            {(1, 2): 0.5, (2, 1): 0.5},
            {1: 0.2, 2: 0.4},
        )
        assert network.place_names == component.place_names
        assert network.transition_names == component.transition_names
        for name in component.transition_names:
            ours, reference = network.transition(name), component.transition(name)
            assert ours.delay == reference.delay
            if reference.guard is not None:
                assert ours.guard.to_source() == reference.guard.to_source()

    def test_three_datacenter_mesh_has_all_paths(self):
        net = _network_fixture(3)
        names = set(net.transition_names)
        for i, j in topology_pairs(3, "mesh"):
            assert f"TRI_{i}{j}" in names and f"TRE_{i}{j}" in names
            assert f"TBI_{i}{j}" in names and f"TBE_{i}{j}" in names

    def test_backup_times_keyed_by_destination(self):
        net = _network_fixture(3)
        # Restoring into DC j uses backup->j time regardless of the source.
        assert net.transition("TBE_12").delay == pytest.approx(0.2)
        assert net.transition("TBE_32").delay == pytest.approx(0.2)
        assert net.transition("TBE_21").delay == pytest.approx(0.1)
        assert net.transition("TBE_13").delay == pytest.approx(0.3)

    def test_ring_topology_skips_non_neighbours(self):
        net = _network_fixture(4, topology="ring")
        names = set(net.transition_names)
        assert "TRI_12" in names and "TRI_41" in names
        assert "TRI_13" not in names and "TRI_24" not in names

    def test_ring_backup_restoration_spans_all_pairs(self):
        # Restoration flows over the backup server's star links, so the ring
        # restriction applies to direct migration only.
        net = _network_fixture(4, topology="ring")
        names = set(net.transition_names)
        assert "TBI_13" in names and "TBE_24" in names

    def test_without_backup_server(self):
        net = _network_fixture(3, has_backup=False)
        assert not any(name.startswith("TB") for name in net.transition_names)

    def test_non_contiguous_datacenter_indices_accepted(self):
        # The 2-DC component never required indices 1 and 2 specifically.
        first, third = DataCenterSpec(index=1), DataCenterSpec(index=3)
        machines_1 = (
            PhysicalMachineSpec(index=1, datacenter_index=1, vm_capacity=2, initial_vms=1),
        )
        machines_3 = (
            PhysicalMachineSpec(index=2, datacenter_index=3, vm_capacity=2, initial_vms=1),
        )
        net = build_transmission_component(first, third, machines_1, machines_3, PARAMS)
        names = set(net.transition_names)
        assert {"TRI_13", "TRI_31", "TBI_13", "TBI_31"} <= names

    def test_missing_direct_time_rejected(self):
        datacenters = [DataCenterSpec(index=i) for i in (1, 2)]
        machines = {
            1: (PhysicalMachineSpec(index=1, datacenter_index=1, vm_capacity=2, initial_vms=1),),
            2: (PhysicalMachineSpec(index=2, datacenter_index=2, vm_capacity=2, initial_vms=1),),
        }
        with pytest.raises(ModelError):
            build_transmission_network(
                datacenters, machines, {(1, 2): 0.5}, {1: 0.1, 2: 0.1}
            )

    def test_non_positive_time_rejected(self):
        datacenters = [DataCenterSpec(index=i) for i in (1, 2)]
        machines = {
            1: (PhysicalMachineSpec(index=1, datacenter_index=1, vm_capacity=2, initial_vms=1),),
            2: (PhysicalMachineSpec(index=2, datacenter_index=2, vm_capacity=2, initial_vms=1),),
        }
        with pytest.raises(ModelError):
            build_transmission_network(
                datacenters, machines, {(1, 2): 0.0, (2, 1): 0.5}, {1: 0.1, 2: 0.1}
            )


class TestGuardSemantics:
    """Evaluate the guards directly against hand-built markings."""

    def marking(self, **overrides):
        base = {
            "OSPM_1_UP": 1,
            "OSPM_2_UP": 1,
            "OSPM_3_UP": 1,
            "OSPM_4_UP": 1,
            "NAS_NET_1_UP": 1,
            "NAS_NET_2_UP": 1,
            "DC_1_UP": 1,
            "DC_2_UP": 1,
            "BKP_UP": 1,
        }
        base.update(overrides)
        return base

    def evaluate(self, transition_name, marking):
        from repro.expressions import evaluate

        net = build()
        return evaluate(net.transition(transition_name).guard, marking)

    def test_direct_migration_disabled_in_nominal_state(self):
        assert self.evaluate("TRI_12", self.marking()) is False

    def test_direct_migration_enabled_when_source_pms_exhausted(self):
        marking = self.marking(OSPM_1_UP=0, OSPM_2_UP=0)
        assert self.evaluate("TRI_12", marking) is True

    def test_direct_migration_disabled_when_destination_unhealthy(self):
        marking = self.marking(OSPM_1_UP=0, OSPM_2_UP=0, DC_2_UP=0)
        assert self.evaluate("TRI_12", marking) is False

    def test_direct_migration_disabled_during_source_disaster(self):
        # A destroyed data center cannot push its images directly; the backup
        # server path takes over (Section III).
        marking = self.marking(OSPM_1_UP=0, OSPM_2_UP=0, DC_1_UP=0)
        assert self.evaluate("TRI_12", marking) is False
        assert self.evaluate("TBI_12", marking) is True

    def test_backup_path_requires_backup_server(self):
        marking = self.marking(DC_1_UP=0, BKP_UP=0)
        assert self.evaluate("TBI_12", marking) is False

    def test_backup_path_triggered_by_network_loss(self):
        marking = self.marking(NAS_NET_1_UP=0)
        assert self.evaluate("TBI_12", marking) is True

    def test_backup_path_needs_healthy_destination(self):
        marking = self.marking(DC_1_UP=0, OSPM_3_UP=0, OSPM_4_UP=0)
        assert self.evaluate("TBI_12", marking) is False

    def test_symmetric_paths(self):
        marking = self.marking(OSPM_3_UP=0, OSPM_4_UP=0)
        assert self.evaluate("TRI_21", marking) is True
        assert self.evaluate("TRI_12", marking) is False
