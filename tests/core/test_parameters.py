"""Tests for the case-study parameters (Table VI and Section V constants)."""

import pytest

from repro.core import (
    ALPHA_VALUES,
    CaseStudyParameters,
    ComponentParameters,
    DEFAULT_PARAMETERS,
    DISASTER_MEAN_TIME_YEARS,
    DisasterParameters,
    FailureRepairPair,
)
from repro.exceptions import ConfigurationError


class TestTableVIDefaults:
    def test_published_values(self):
        components = ComponentParameters()
        assert components.operating_system == FailureRepairPair(4000.0, 1.0)
        assert components.physical_machine == FailureRepairPair(1000.0, 12.0)
        assert components.switch == FailureRepairPair(430_000.0, 4.0)
        assert components.router == FailureRepairPair(14_077_473.0, 4.0)
        assert components.nas == FailureRepairPair(20_000_000.0, 2.0)
        assert components.virtual_machine == FailureRepairPair(2880.0, 0.5)
        assert components.backup_server == FailureRepairPair(50_000.0, 0.5)

    def test_invalid_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureRepairPair(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            FailureRepairPair(10.0, -1.0)

    def test_with_override_replaces_single_component(self):
        components = ComponentParameters().with_override(
            "physical_machine", FailureRepairPair(5000.0, 6.0)
        )
        assert components.physical_machine.mttf_hours == 5000.0
        assert components.operating_system.mttf_hours == 4000.0

    def test_with_override_unknown_component_rejected(self):
        with pytest.raises(ConfigurationError):
            ComponentParameters().with_override("gpu", FailureRepairPair(1.0, 1.0))


class TestCaseStudyConstants:
    def test_sweep_values_match_section_v(self):
        assert ALPHA_VALUES == (0.35, 0.40, 0.45)
        assert DISASTER_MEAN_TIME_YEARS == (100.0, 200.0, 300.0)

    def test_default_disaster_parameters(self):
        disaster = DisasterParameters()
        assert disaster.mean_time_to_disaster.years == pytest.approx(100.0)
        assert disaster.recovery_time.years == pytest.approx(1.0)

    def test_disaster_from_years(self):
        disaster = DisasterParameters.from_years(300.0)
        assert disaster.mean_time_to_disaster.hours == pytest.approx(300.0 * 8760.0)

    def test_invalid_disaster_parameters_rejected(self):
        from repro.metrics import Duration

        with pytest.raises(ConfigurationError):
            DisasterParameters(recovery_time=Duration(0.0))

    def test_default_case_study_parameters(self):
        assert DEFAULT_PARAMETERS.vm_image_size.gigabytes == pytest.approx(4.0)
        assert DEFAULT_PARAMETERS.vm_start_time.minutes == pytest.approx(5.0)
        assert DEFAULT_PARAMETERS.required_running_vms == 2
        assert DEFAULT_PARAMETERS.vms_per_physical_machine == 2

    def test_with_disaster_mean_time_keeps_other_fields(self):
        updated = DEFAULT_PARAMETERS.with_disaster_mean_time(300.0)
        assert updated.disaster.mean_time_to_disaster.years == pytest.approx(300.0)
        assert updated.disaster.recovery_time.years == pytest.approx(1.0)
        assert updated.vm_image_size.gigabytes == pytest.approx(4.0)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            CaseStudyParameters(required_running_vms=0)
        with pytest.raises(ConfigurationError):
            CaseStudyParameters(vms_per_physical_machine=0)
