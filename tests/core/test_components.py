"""Tests for the SIMPLE_COMPONENT block (Figure 2 / Table I)."""

import pytest

from repro.core import build_simple_component, down_place, up_place
from repro.core.components import availability_expression
from repro.exceptions import ModelError
from repro.metrics import availability_from_mttf_mttr
from repro.spn import solve_steady_state, validate


class TestStructure:
    def test_places_follow_paper_naming(self):
        net = build_simple_component("DC_1", mttf=876000.0, mttr=8760.0)
        assert up_place("DC_1") == "DC_1_UP"
        assert down_place("DC_1") == "DC_1_DOWN"
        assert set(net.place_names) == {"DC_1_UP", "DC_1_DOWN"}

    def test_transitions_are_single_server_exponential(self):
        net = build_simple_component("OSPM_1", mttf=100.0, mttr=2.0)
        failure = net.transition("OSPM_1_F")
        repair = net.transition("OSPM_1_R")
        assert not failure.immediate
        assert failure.delay == 100.0
        assert repair.delay == 2.0
        assert failure.semantics.value == "ss"

    def test_initially_up_by_default(self):
        net = build_simple_component("X", 10.0, 1.0)
        assert net.initial_marking() == {"X_UP": 1, "X_DOWN": 0}

    def test_initially_down_option(self):
        net = build_simple_component("X", 10.0, 1.0, initially_up=False)
        assert net.initial_marking() == {"X_UP": 0, "X_DOWN": 1}

    def test_block_passes_structural_validation(self):
        assert validate(build_simple_component("X", 10.0, 1.0)) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            build_simple_component("X", 0.0, 1.0)
        with pytest.raises(ModelError):
            build_simple_component("X", 10.0, 0.0)


class TestBehaviour:
    @pytest.mark.parametrize(
        "mttf, mttr",
        [
            (4000.0, 1.0),        # operating system (Table VI)
            (1000.0, 12.0),       # physical machine
            (2880.0, 0.5),        # virtual machine
            (50_000.0, 0.5),      # backup server
            (876_000.0, 8760.0),  # disaster occurrence / recovery
        ],
    )
    def test_availability_equals_closed_form(self, mttf, mttr):
        net = build_simple_component("X", mttf, mttr)
        solution = solve_steady_state(net)
        assert solution.probability(availability_expression("X")) == pytest.approx(
            availability_from_mttf_mttr(mttf, mttr), rel=1e-9
        )

    def test_token_is_conserved(self):
        net = build_simple_component("X", 10.0, 1.0)
        solution = solve_steady_state(net)
        for marking, _ in solution.marking_probabilities():
            assert marking["X_UP"] + marking["X_DOWN"] == 1
