"""Tests for the assembled CloudSystemModel.

The full case-study configuration (two data centers with two PMs each) has a
six-figure tangible state space and is exercised by the benchmark suite; the
unit tests here use reduced deployments (one PM per data center) that keep
the state space small while covering every structural feature: hierarchical
RBD parameters, block fusion, the availability expression, migration-time
derivation, and the monotonicity properties the paper's conclusions rely on.
"""

import pytest

from repro.core import (
    CaseStudyParameters,
    CloudSystemModel,
    CloudSystemSpec,
    DataCenterSpec,
    single_datacenter_spec,
)
from repro.exceptions import ConfigurationError
from repro.metrics import AvailabilityResult, Duration
from repro.network import BRASILIA, RIO_DE_JANEIRO, SAO_PAULO, TOKYO
from repro.network.migration import MigrationTimes
from repro.spn import validate


def small_two_dc_spec(required=1):
    """Two data centers with a single PM each (small state space)."""
    return CloudSystemSpec(
        datacenters=(
            DataCenterSpec(index=1, location=RIO_DE_JANEIRO, hot_physical_machines=1,
                           vms_per_machine=2, initial_vms_per_hot_machine=1),
            DataCenterSpec(index=2, location=BRASILIA, hot_physical_machines=1,
                           vms_per_machine=2, initial_vms_per_hot_machine=1),
        ),
        backup_location=SAO_PAULO,
        has_backup_server=True,
        required_running_vms=required,
    )


def small_model(required=1, alpha=0.35, **kwargs):
    return CloudSystemModel(spec=small_two_dc_spec(required), alpha=alpha, **kwargs)


class TestAssembly:
    def test_single_datacenter_model_structure(self):
        model = CloudSystemModel(spec=single_datacenter_spec(machines=2))
        net = model.build()
        assert "DC_1_UP" in net.place_names
        assert "NAS_NET_1_UP" in net.place_names
        assert "OSPM_1_UP" in net.place_names and "OSPM_2_UP" in net.place_names
        assert "VM_UP_1" in net.place_names
        # No transmission component or backup server for a single site.
        assert "TRI_12" not in net.transition_names
        assert "BKP_UP" not in net.place_names

    def test_distributed_model_structure(self):
        net = small_model().build()
        assert "TRI_12" in net.transition_names
        assert "TBE_21" in net.transition_names
        assert "BKP_UP" in net.place_names
        assert "FailedVMS_1" in net.place_names and "FailedVMS_2" in net.place_names

    def test_model_passes_structural_validation(self):
        assert validate(small_model().build()) == []

    def test_build_is_cached(self):
        model = small_model()
        assert model.build() is model.build()

    def test_hierarchical_parameters_exposed(self):
        model = small_model()
        assert model.hierarchical_parameters.os_pm.mttf == pytest.approx(800.0, rel=0.01)

    def test_transition_delays_use_hierarchical_equivalents(self):
        model = small_model()
        net = model.build()
        assert net.transition("OSPM_1_F").delay == pytest.approx(
            model.hierarchical_parameters.os_pm.mttf
        )
        assert net.transition("NAS_NET_1_F").delay == pytest.approx(
            model.hierarchical_parameters.nas_net.mttf
        )

    def test_disaster_parameters_flow_into_dc_components(self):
        parameters = CaseStudyParameters().with_disaster_mean_time(300.0)
        model = small_model(parameters=parameters)
        assert model.build().transition("DC_1_F").delay == pytest.approx(300.0 * 8760.0)

    def test_three_datacenters_still_require_locations(self):
        spec = CloudSystemSpec(
            datacenters=tuple(
                DataCenterSpec(index=i, hot_physical_machines=1) for i in (1, 2, 3)
            ),
            required_running_vms=1,
        )
        with pytest.raises(ConfigurationError):
            CloudSystemModel(spec=spec, alpha=0.35)

    def test_three_datacenters_build_a_transmission_network(self):
        from repro.core.datacenter import multi_datacenter_spec
        from repro.network.geo import BRASILIA, RECIFE, RIO_DE_JANEIRO, SAO_PAULO

        spec = multi_datacenter_spec(
            locations=(RIO_DE_JANEIRO, BRASILIA, RECIFE),
            backup_location=SAO_PAULO,
            machines_per_datacenter=1,
            required_running_vms=1,
        )
        model = CloudSystemModel(spec=spec, alpha=0.35)
        names = set(model.build().transition_names)
        assert {"TRI_12", "TRI_23", "TRI_31", "TBE_13", "TBE_32"} <= names
        direct, backup = model.resolved_transmission_times()
        assert len(direct) == 6 and len(backup) == 3
        assert all(hours > 0.0 for hours in direct.values())

    def test_explicit_migration_times_rejected_beyond_two_datacenters(self):
        from repro.core.datacenter import multi_datacenter_spec
        from repro.network.geo import BRASILIA, RECIFE, RIO_DE_JANEIRO, SAO_PAULO

        spec = multi_datacenter_spec(
            locations=(RIO_DE_JANEIRO, BRASILIA, RECIFE),
            backup_location=SAO_PAULO,
            machines_per_datacenter=1,
            required_running_vms=1,
        )
        times = MigrationTimes(
            datacenter_to_datacenter=Duration.from_hours(1.0),
            backup_to_first=Duration.from_hours(0.5),
            backup_to_second=Duration.from_hours(0.75),
        )
        with pytest.raises(ConfigurationError):
            CloudSystemModel(spec=spec, alpha=0.35, migration_times=times)

    def test_distributed_deployment_requires_alpha_or_times(self):
        with pytest.raises(ConfigurationError):
            CloudSystemModel(spec=small_two_dc_spec())

    def test_explicit_migration_times_bypass_geography(self):
        times = MigrationTimes(
            datacenter_to_datacenter=Duration.from_hours(1.0),
            backup_to_first=Duration.from_hours(0.5),
            backup_to_second=Duration.from_hours(0.75),
        )
        spec = CloudSystemSpec(
            datacenters=(
                DataCenterSpec(index=1, hot_physical_machines=1),
                DataCenterSpec(index=2, hot_physical_machines=1),
            ),
            has_backup_server=True,
            required_running_vms=1,
        )
        model = CloudSystemModel(spec=spec, migration_times=times)
        net = model.build()
        assert net.transition("TRE_12").delay == 1.0
        assert net.transition("TBE_21").delay == 0.5
        assert net.transition("TBE_12").delay == 0.75


class TestAvailabilityExpression:
    def test_expression_sums_all_vm_up_places(self):
        model = small_model(required=1)
        assert model.availability_expression() == "(#VM_UP_1 + #VM_UP_2) >= 1"

    def test_threshold_override(self):
        model = small_model(required=1)
        assert model.availability_expression(required_running_vms=2).endswith(">= 2")

    def test_availability_measure_object(self):
        measure = small_model().availability_measure()
        assert measure.name == "availability"


class TestEvaluation:
    def test_distributed_availability_between_zero_and_one(self):
        result = small_model(required=1).availability()
        assert isinstance(result, AvailabilityResult)
        assert 0.99 < result.availability < 1.0

    def test_distributed_beats_single_site(self):
        single = CloudSystemModel(
            spec=single_datacenter_spec(machines=1, required_running_vms=1)
        ).availability()
        distributed = small_model(required=1).availability()
        assert distributed.availability > single.availability
        # The single site is disaster-limited to roughly two nines.
        assert single.nines < 2.1
        assert distributed.nines > 3.0

    def test_stricter_threshold_reduces_availability(self):
        relaxed = small_model(required=1).availability()
        strict = small_model(required=2).availability()
        assert strict.availability < relaxed.availability

    def test_expected_running_vms(self):
        model = small_model(required=1)
        expected = model.expected_running_vms()
        assert 1.9 < expected <= 2.0

    def test_availability_reuses_precomputed_solution(self):
        model = small_model(required=1)
        solution = model.solve()
        first = model.availability(solution=solution)
        second = model.availability(solution=solution)
        assert first.availability == second.availability

    def test_longer_distance_reduces_availability(self):
        near = small_model(required=1).availability()
        far_spec = CloudSystemSpec(
            datacenters=(
                DataCenterSpec(index=1, location=RIO_DE_JANEIRO, hot_physical_machines=1),
                DataCenterSpec(index=2, location=TOKYO, hot_physical_machines=1),
            ),
            backup_location=SAO_PAULO,
            has_backup_server=True,
            required_running_vms=1,
        )
        far = CloudSystemModel(spec=far_spec, alpha=0.35).availability()
        assert far.availability < near.availability

    def test_higher_alpha_improves_availability(self):
        slow = small_model(required=1, alpha=0.35).availability()
        fast = small_model(required=1, alpha=0.45).availability()
        assert fast.availability >= slow.availability

    def test_rarer_disasters_improve_availability(self):
        frequent = small_model(required=1).availability()
        rare = small_model(
            required=1, parameters=CaseStudyParameters().with_disaster_mean_time(300.0)
        ).availability()
        assert rare.availability > frequent.availability

    def test_simulation_cross_validation(self):
        model = small_model(required=1)
        analytic = model.availability()
        simulated = model.simulate_availability(horizon=200_000.0, replications=3, seed=11)
        assert simulated.value("availability") == pytest.approx(
            analytic.availability, abs=0.01
        )
