"""Tests for the case-study scenario definitions."""

import pytest

from repro.core import (
    ALPHA_VALUES,
    BASELINE_ALPHA,
    BASELINE_DISASTER_YEARS,
    CITY_PAIRS,
    DISASTER_MEAN_TIME_YEARS,
    DistributedScenario,
    baseline_distributed_scenarios,
    figure7_scenarios,
    single_datacenter_baselines,
)
from repro.network import BRASILIA, RIO_DE_JANEIRO, SAO_PAULO, TOKYO


class TestCityPairs:
    def test_five_pairs_anchored_at_rio(self):
        assert len(CITY_PAIRS) == 5
        assert all(first is RIO_DE_JANEIRO for first, _ in CITY_PAIRS)

    def test_partners_match_section_v(self):
        partners = [second.name for _, second in CITY_PAIRS]
        assert partners == ["Brasilia", "Recife", "New York", "Calcutta", "Tokyo"]


class TestDistributedScenario:
    def test_defaults_are_the_baseline_configuration(self):
        scenario = DistributedScenario(RIO_DE_JANEIRO, BRASILIA)
        assert scenario.alpha == BASELINE_ALPHA == 0.35
        assert scenario.disaster_mean_time_years == BASELINE_DISASTER_YEARS == 100.0
        assert scenario.backup is SAO_PAULO

    def test_label_mentions_parameters(self):
        scenario = DistributedScenario(RIO_DE_JANEIRO, TOKYO, alpha=0.45, disaster_mean_time_years=300.0)
        assert "Tokyo" in scenario.label
        assert "0.45" in scenario.label
        assert "300" in scenario.label

    def test_build_model_uses_case_study_configuration(self):
        model = DistributedScenario(RIO_DE_JANEIRO, BRASILIA).build_model()
        assert model.spec.total_initial_vms == 4
        assert model.spec.required_running_vms == 2
        assert len(model.spec.physical_machines) == 4
        assert model.alpha == 0.35

    def test_build_model_applies_disaster_mean_time(self):
        model = DistributedScenario(
            RIO_DE_JANEIRO, BRASILIA, disaster_mean_time_years=200.0
        ).build_model()
        assert model.parameters.disaster.mean_time_to_disaster.years == pytest.approx(200.0)


class TestScenarioCollections:
    def test_baseline_scenarios_one_per_pair(self):
        scenarios = baseline_distributed_scenarios()
        assert len(scenarios) == 5
        assert all(s.alpha == BASELINE_ALPHA for s in scenarios)
        assert all(s.disaster_mean_time_years == BASELINE_DISASTER_YEARS for s in scenarios)

    def test_figure7_grid_has_45_scenarios(self):
        scenarios = figure7_scenarios()
        assert len(scenarios) == len(CITY_PAIRS) * len(ALPHA_VALUES) * len(DISASTER_MEAN_TIME_YEARS)
        assert len({s.label for s in scenarios}) == 45

    def test_single_site_baselines(self):
        baselines = single_datacenter_baselines()
        assert [b.machines for b in baselines] == [1, 2, 4]
        assert all("machine" in b.label for b in baselines)
