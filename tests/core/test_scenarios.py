"""Tests for the case-study scenario definitions."""

import pytest

from repro.core import (
    ALPHA_VALUES,
    BASELINE_ALPHA,
    BASELINE_DISASTER_YEARS,
    CITY_PAIRS,
    DISASTER_MEAN_TIME_YEARS,
    DistributedScenario,
    MultiDataCenterScenario,
    SingleDataCenterScenario,
    baseline_distributed_scenarios,
    figure7_scenarios,
    single_datacenter_baselines,
)
from repro.exceptions import ConfigurationError
from repro.network import BRASILIA, RECIFE, RIO_DE_JANEIRO, SAO_PAULO, TOKYO


class TestCityPairs:
    def test_five_pairs_anchored_at_rio(self):
        assert len(CITY_PAIRS) == 5
        assert all(first is RIO_DE_JANEIRO for first, _ in CITY_PAIRS)

    def test_partners_match_section_v(self):
        partners = [second.name for _, second in CITY_PAIRS]
        assert partners == ["Brasilia", "Recife", "New York", "Calcutta", "Tokyo"]


class TestDistributedScenario:
    def test_defaults_are_the_baseline_configuration(self):
        scenario = DistributedScenario(RIO_DE_JANEIRO, BRASILIA)
        assert scenario.alpha == BASELINE_ALPHA == 0.35
        assert scenario.disaster_mean_time_years == BASELINE_DISASTER_YEARS == 100.0
        assert scenario.backup is SAO_PAULO

    def test_label_mentions_parameters(self):
        scenario = DistributedScenario(RIO_DE_JANEIRO, TOKYO, alpha=0.45, disaster_mean_time_years=300.0)
        assert "Tokyo" in scenario.label
        assert "0.45" in scenario.label
        assert "300" in scenario.label

    def test_labels_keep_axis_precision(self):
        # Labels double as unique grid case names: two distinct axis values
        # must never round onto one label.
        close = [
            DistributedScenario(RIO_DE_JANEIRO, TOKYO, alpha=alpha).label
            for alpha in (0.351, 0.352)
        ]
        assert close[0] != close[1]
        years = [
            DistributedScenario(
                RIO_DE_JANEIRO, TOKYO, disaster_mean_time_years=y
            ).label
            for y in (99.6, 100.0)
        ]
        assert years[0] != years[1]

    def test_build_model_uses_case_study_configuration(self):
        model = DistributedScenario(RIO_DE_JANEIRO, BRASILIA).build_model()
        assert model.spec.total_initial_vms == 4
        assert model.spec.required_running_vms == 2
        assert len(model.spec.physical_machines) == 4
        assert model.alpha == 0.35

    def test_build_model_applies_disaster_mean_time(self):
        model = DistributedScenario(
            RIO_DE_JANEIRO, BRASILIA, disaster_mean_time_years=200.0
        ).build_model()
        assert model.parameters.disaster.mean_time_to_disaster.years == pytest.approx(200.0)


class TestScenarioMachineCount:
    def test_default_inherits_and_builds_the_paper_configuration(self):
        scenario = DistributedScenario(RIO_DE_JANEIRO, BRASILIA)
        assert scenario.machines_per_datacenter is None
        assert len(scenario.build_model().spec.physical_machines) == 4

    def test_explicit_machine_count_shapes_the_model(self):
        scenario = DistributedScenario(
            RIO_DE_JANEIRO, BRASILIA, machines_per_datacenter=1
        )
        model = scenario.build_model()
        assert len(model.spec.physical_machines) == 2
        assert "machines=1" in scenario.label

    def test_invalid_machine_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DistributedScenario(RIO_DE_JANEIRO, BRASILIA, machines_per_datacenter=0)


class TestSingleDataCenterScenario:
    def test_disaster_mean_time_override(self):
        scenario = SingleDataCenterScenario(
            machines=2, label="two", disaster_mean_time_years=300.0
        )
        model = scenario.build_model()
        assert model.parameters.disaster.mean_time_to_disaster.years == pytest.approx(
            300.0
        )

    def test_location_defaults_to_rio(self):
        scenario = SingleDataCenterScenario(machines=1, label="one")
        assert scenario.build_model().spec.datacenters[0].location is RIO_DE_JANEIRO


class TestMultiDataCenterScenario:
    def test_three_site_model_builds_three_datacenters(self):
        scenario = MultiDataCenterScenario(
            locations=(RIO_DE_JANEIRO, BRASILIA, RECIFE), machines_per_datacenter=1
        )
        model = scenario.build_model()
        assert len(model.spec.datacenters) == 3
        assert model.spec.has_backup_server
        assert model.topology == "mesh"
        assert "Recife" in scenario.label

    def test_two_site_scenario_matches_distributed_structure(self):
        multi = MultiDataCenterScenario(
            locations=(RIO_DE_JANEIRO, BRASILIA), machines_per_datacenter=2
        ).build_model()
        classic = DistributedScenario(RIO_DE_JANEIRO, BRASILIA).build_model()
        assert multi.build().place_names == classic.build().place_names
        assert multi.build().transition_names == classic.build().transition_names

    def test_backup_ablation_removes_backup_paths(self):
        scenario = MultiDataCenterScenario(
            locations=(RIO_DE_JANEIRO, BRASILIA),
            machines_per_datacenter=1,
            has_backup_server=False,
        )
        net = scenario.build_model().build()
        assert not any(name.startswith("TB") for name in net.transition_names)
        assert "no-backup" in scenario.label

    def test_l_threshold_flows_into_model(self):
        scenario = MultiDataCenterScenario(
            locations=(RIO_DE_JANEIRO, BRASILIA),
            machines_per_datacenter=2,
            minimum_operational_pms=2,
        )
        model = scenario.build_model()
        assert model.minimum_operational_pms == 2
        assert "< 2" in model.build().transition("TRI_12").guard.to_source()

    def test_single_location_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiDataCenterScenario(locations=(RIO_DE_JANEIRO,))

    def test_backup_server_requires_location(self):
        with pytest.raises(ConfigurationError):
            MultiDataCenterScenario(
                locations=(RIO_DE_JANEIRO, BRASILIA), backup=None
            )


class TestScenarioCollections:
    def test_baseline_scenarios_one_per_pair(self):
        scenarios = baseline_distributed_scenarios()
        assert len(scenarios) == 5
        assert all(s.alpha == BASELINE_ALPHA for s in scenarios)
        assert all(s.disaster_mean_time_years == BASELINE_DISASTER_YEARS for s in scenarios)

    def test_figure7_grid_has_45_scenarios(self):
        scenarios = figure7_scenarios()
        assert len(scenarios) == len(CITY_PAIRS) * len(ALPHA_VALUES) * len(DISASTER_MEAN_TIME_YEARS)
        assert len({s.label for s in scenarios}) == 45

    def test_single_site_baselines(self):
        baselines = single_datacenter_baselines()
        assert [b.machines for b in baselines] == [1, 2, 4]
        assert all("machine" in b.label for b in baselines)
