"""Tests for the RBD → SPN hierarchical step (Figure 5)."""

import pytest

from repro.core import (
    ComponentParameters,
    FailureRepairPair,
    HierarchicalParameters,
    build_nas_net_rbd,
    build_os_pm_rbd,
)
from repro.metrics import availability_from_mttf_mttr


class TestOsPmRbd:
    def test_structure(self):
        rbd = build_os_pm_rbd(ComponentParameters())
        assert rbd.basic_block_names() == ["OS", "PM"]

    def test_availability_is_series_product(self):
        rbd = build_os_pm_rbd(ComponentParameters())
        expected = (4000.0 / 4001.0) * (1000.0 / 1012.0)
        assert rbd.availability() == pytest.approx(expected)


class TestNasNetRbd:
    def test_structure(self):
        rbd = build_nas_net_rbd(ComponentParameters())
        assert rbd.basic_block_names() == ["Switch", "Router", "NAS"]

    def test_availability_dominated_by_switch(self):
        rbd = build_nas_net_rbd(ComponentParameters())
        assert rbd.availability() > 0.99998
        assert rbd.availability() < 1.0


class TestHierarchicalParameters:
    def test_equivalent_values_reproduce_availability(self):
        hierarchy = HierarchicalParameters.from_components(ComponentParameters())
        os_pm = hierarchy.os_pm
        assert availability_from_mttf_mttr(os_pm.mttf, os_pm.mttr) == pytest.approx(
            os_pm.availability
        )
        nas_net = hierarchy.nas_net
        assert availability_from_mttf_mttr(nas_net.mttf, nas_net.mttr) == pytest.approx(
            nas_net.availability
        )

    def test_os_pm_equivalent_mttf_closed_form(self):
        hierarchy = HierarchicalParameters.from_components(ComponentParameters())
        assert hierarchy.os_pm.mttf == pytest.approx(1.0 / (1 / 4000.0 + 1 / 1000.0))

    def test_physical_machine_dominates_os_pm_unavailability(self):
        hierarchy = HierarchicalParameters.from_components(ComponentParameters())
        pm_only = 1000.0 / 1012.0
        assert hierarchy.os_pm.availability < pm_only
        assert hierarchy.os_pm.availability > pm_only - 0.001

    def test_custom_components_flow_through(self):
        components = ComponentParameters().with_override(
            "physical_machine", FailureRepairPair(2000.0, 6.0)
        )
        hierarchy = HierarchicalParameters.from_components(components)
        default = HierarchicalParameters.from_components(ComponentParameters())
        assert hierarchy.os_pm.availability > default.os_pm.availability
