"""Tests for the deployment specification dataclasses."""

import pytest

from repro.core import (
    CloudSystemSpec,
    DataCenterSpec,
    PhysicalMachineSpec,
    single_datacenter_spec,
    two_datacenter_spec,
)
from repro.exceptions import ConfigurationError
from repro.network import BRASILIA, RIO_DE_JANEIRO, SAO_PAULO


class TestPhysicalMachineSpec:
    def test_naming(self):
        pm = PhysicalMachineSpec(index=3, datacenter_index=2, vm_capacity=2, initial_vms=1)
        assert pm.name == "OSPM_3"
        assert pm.is_hot

    def test_warm_machine(self):
        pm = PhysicalMachineSpec(index=1, datacenter_index=1, vm_capacity=2, initial_vms=0)
        assert not pm.is_hot

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            PhysicalMachineSpec(index=1, datacenter_index=1, vm_capacity=0, initial_vms=0)

    def test_initial_vms_above_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PhysicalMachineSpec(index=1, datacenter_index=1, vm_capacity=2, initial_vms=3)


class TestDataCenterSpec:
    def test_paper_notation_t_equals_n_plus_m(self):
        dc = DataCenterSpec(index=1, hot_physical_machines=2, warm_physical_machines=1)
        assert dc.total_physical_machines == 3

    def test_names(self):
        dc = DataCenterSpec(index=2)
        assert dc.name == "DC_2"
        assert dc.network_name == "NAS_NET_2"
        assert dc.failed_pool_place == "FailedVMS_2"

    def test_needs_at_least_one_machine(self):
        with pytest.raises(ConfigurationError):
            DataCenterSpec(index=1, hot_physical_machines=0, warm_physical_machines=0)

    def test_initial_vms_bounded_by_capacity(self):
        with pytest.raises(ConfigurationError):
            DataCenterSpec(index=1, vms_per_machine=2, initial_vms_per_hot_machine=3)


class TestCloudSystemSpec:
    def test_case_study_configuration(self):
        spec = two_datacenter_spec(
            first_location=RIO_DE_JANEIRO,
            second_location=BRASILIA,
            backup_location=SAO_PAULO,
        )
        assert spec.is_distributed
        assert spec.total_initial_vms == 4  # N = 4 in the paper
        assert spec.required_running_vms == 2  # k = 2
        machines = spec.physical_machines
        assert [pm.index for pm in machines] == [1, 2, 3, 4]
        assert [pm.datacenter_index for pm in machines] == [1, 1, 2, 2]
        assert all(pm.vm_capacity == 2 for pm in machines)

    def test_machines_of_datacenter(self):
        spec = two_datacenter_spec()
        assert [pm.index for pm in spec.machines_of(2)] == [3, 4]

    def test_warm_machines_start_empty(self):
        spec = two_datacenter_spec(warm_machines_per_datacenter=1)
        warm = [pm for pm in spec.physical_machines if not pm.is_hot]
        assert len(warm) == 2
        assert all(pm.initial_vms == 0 for pm in warm)

    def test_indices_must_be_sequential(self):
        with pytest.raises(ConfigurationError):
            CloudSystemSpec(datacenters=(DataCenterSpec(index=2),))

    def test_threshold_cannot_exceed_total_vms(self):
        with pytest.raises(ConfigurationError):
            single_datacenter_spec(machines=1, vms_per_machine=2, required_running_vms=5)

    def test_single_datacenter_baseline_hosts_enough_vms(self):
        # The one-machine baseline must host two VMs so that k = 2 can be met.
        spec = single_datacenter_spec(machines=1, required_running_vms=2)
        assert spec.total_initial_vms == 2
        assert not spec.is_distributed

    def test_two_machine_baseline_hosts_one_vm_each(self):
        spec = single_datacenter_spec(machines=2, required_running_vms=2)
        assert spec.total_initial_vms == 2
        assert [pm.initial_vms for pm in spec.physical_machines] == [1, 1]

    def test_four_machine_baseline_matches_distributed_vm_count(self):
        spec = single_datacenter_spec(machines=4, required_running_vms=2)
        assert spec.total_initial_vms == 4
