"""Tests for the VM_BEHAVIOR block (Figure 3 / Tables II-III)."""

import pytest

from repro.core import (
    CaseStudyParameters,
    DataCenterSpec,
    PhysicalMachineSpec,
    VmBehaviorParameters,
    build_simple_component,
    build_vm_behavior,
)
from repro.core.vm_behavior import (
    failed_pool_place,
    infrastructure_failed_guard,
    infrastructure_working_guard,
    vm_up_place,
)
from repro.exceptions import ModelError
from repro.spn import ProbabilityMeasure, merge, solve_steady_state, validate


PARAMS = VmBehaviorParameters(vm_mttf=2880.0, vm_mttr=0.5, vm_start_time=5.0 / 60.0)


def machine(index=1, dc=1, capacity=2, initial=1):
    return PhysicalMachineSpec(
        index=index, datacenter_index=dc, vm_capacity=capacity, initial_vms=initial
    )


def datacenter(index=1):
    return DataCenterSpec(index=index)


def block(pm=None, dc=None, params=PARAMS):
    return build_vm_behavior(pm or machine(), dc or datacenter(), params)


def full_single_pm_model(vm_mttf=2880.0, vm_mttr=0.5, start=5.0 / 60.0, initial=1):
    """One PM with its infrastructure simple components, composed."""
    parameters = VmBehaviorParameters(vm_mttf, vm_mttr, start)
    blocks = [
        build_simple_component("OSPM_1", mttf=806.0, mttr=9.8),
        build_simple_component("NAS_NET_1", mttf=400000.0, mttr=4.0),
        build_simple_component("DC_1", mttf=876000.0, mttr=8760.0),
        build_vm_behavior(machine(initial=initial), datacenter(), parameters),
    ]
    return merge("single_pm", blocks)


class TestStructure:
    def test_places_follow_paper_naming(self):
        net = block()
        expected = {"VM_UP_1", "VM_DOWN_1", "VM_RDY_1", "VM_STRTD_1", "FailedVMS_1"}
        assert set(net.place_names) == expected

    def test_transition_attributes_match_table_iii(self):
        net = block()
        fail = net.transition("VM_F_1")
        repair = net.transition("VM_R_1")
        start = net.transition("VM_STRT_1")
        assert fail.semantics.value == "is" and fail.delay == 2880.0
        assert repair.semantics.value == "is" and repair.delay == 0.5
        assert start.semantics.value == "ss" and start.delay == pytest.approx(5.0 / 60.0)

    def test_immediate_transitions_present(self):
        net = block()
        immediate = {t.name for t in net.transitions if t.immediate}
        assert immediate == {
            "VM_Subs_1",
            "FPM_UP_1",
            "FPM_DW_1",
            "FPM_ST_1",
            "FPM_Subs_1",
            "VM_Acq_1",
        }

    def test_guards_reference_infrastructure_components(self):
        net = block()
        guard = net.transition("FPM_UP_1").guard
        assert guard.places() == frozenset({"OSPM_1_UP", "NAS_NET_1_UP", "DC_1_UP"})
        working = net.transition("VM_Subs_1").guard
        assert working.places() == frozenset({"OSPM_1_UP", "NAS_NET_1_UP", "DC_1_UP"})

    def test_guard_helpers_match_table_ii_semantics(self):
        failed = infrastructure_failed_guard(2, 1)
        working = infrastructure_working_guard(2, 1)
        assert "OR" in failed and "= 0" in failed
        assert "AND" in working and "> 0" in working

    def test_initial_marking_reflects_hot_pool(self):
        assert block().initial_marking()[vm_up_place(1)] == 1
        warm = build_vm_behavior(machine(initial=0), datacenter(), PARAMS)
        assert warm.initial_marking()[vm_up_place(1)] == 0

    def test_mismatched_datacenter_rejected(self):
        with pytest.raises(ModelError):
            build_vm_behavior(machine(dc=2), datacenter(index=1), PARAMS)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            VmBehaviorParameters(vm_mttf=0.0, vm_mttr=1.0, vm_start_time=1.0)


class TestComposedBehaviour:
    def test_validation_of_composed_model(self):
        assert validate(full_single_pm_model()) == []

    def test_vm_availability_close_to_infrastructure_times_vm(self):
        net = full_single_pm_model()
        solution = solve_steady_state(net)
        availability = solution.probability("#VM_UP_1 >= 1")
        # The VM runs only while OSPM, NAS_NET and DC are up, and it also has
        # its own failure/restart cycle, so availability is slightly below the
        # product of the infrastructure availabilities.
        infra = (806.0 / 815.8) * (400000.0 / 400004.0) * (876000.0 / 884760.0)
        assert availability < infra
        assert availability > infra - 0.01

    def test_vm_tokens_conserved(self):
        net = full_single_pm_model(initial=1)
        solution = solve_steady_state(net)
        for marking, _ in solution.marking_probabilities():
            total = (
                marking["VM_UP_1"]
                + marking["VM_DOWN_1"]
                + marking["VM_RDY_1"]
                + marking["VM_STRTD_1"]
                + marking["FailedVMS_1"]
            )
            assert total == 1

    def test_vms_never_hosted_while_infrastructure_down(self):
        net = full_single_pm_model()
        solution = solve_steady_state(net)
        for marking, probability in solution.marking_probabilities():
            if probability == 0.0:
                continue
            if marking["OSPM_1_UP"] == 0 or marking["DC_1_UP"] == 0:
                assert marking["VM_UP_1"] == 0
                assert marking["VM_STRTD_1"] == 0

    def test_ready_place_is_always_vanishing(self):
        net = full_single_pm_model()
        solution = solve_steady_state(net)
        for marking, _ in solution.marking_probabilities():
            assert marking["VM_RDY_1"] == 0

    def test_two_vms_on_one_machine(self):
        net = full_single_pm_model(initial=2)
        solution = solve_steady_state(net)
        both_up = solution.probability("#VM_UP_1 >= 2")
        one_up = solution.probability("#VM_UP_1 >= 1")
        assert 0.9 < both_up < one_up < 1.0

    def test_faster_start_improves_availability(self):
        slow = solve_steady_state(full_single_pm_model(start=2.0)).probability("#VM_UP_1 >= 1")
        fast = solve_steady_state(full_single_pm_model(start=5.0 / 60.0)).probability(
            "#VM_UP_1 >= 1"
        )
        assert fast > slow
