"""Tests for the CTMC model."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ModelError
from repro.markov import ContinuousTimeMarkovChain, two_state_availability_chain


class TestConstruction:
    def test_states_and_indices(self):
        chain = ContinuousTimeMarkovChain(["A", "B", "C"])
        assert chain.number_of_states == 3
        assert chain.index_of("B") == 1
        assert chain.states == ["A", "B", "C"]

    def test_duplicate_states_rejected(self):
        with pytest.raises(ModelError):
            ContinuousTimeMarkovChain(["A", "A"])

    def test_empty_chain_rejected(self):
        with pytest.raises(ModelError):
            ContinuousTimeMarkovChain([])

    def test_unknown_state_rejected(self):
        chain = ContinuousTimeMarkovChain(["A"])
        with pytest.raises(ModelError):
            chain.index_of("missing")

    def test_self_loop_rejected(self):
        chain = ContinuousTimeMarkovChain(["A", "B"])
        with pytest.raises(ModelError):
            chain.add_transition("A", "A", 1.0)

    def test_negative_rate_rejected(self):
        chain = ContinuousTimeMarkovChain(["A", "B"])
        with pytest.raises(ModelError):
            chain.add_transition("A", "B", -1.0)

    def test_rates_accumulate(self):
        chain = ContinuousTimeMarkovChain(["A", "B"])
        chain.add_transition("A", "B", 1.0)
        chain.add_transition("A", "B", 2.0)
        assert chain.exit_rate("A") == pytest.approx(3.0)

    def test_from_rate_dict(self):
        chain = ContinuousTimeMarkovChain.from_rate_dict({("U", "D"): 0.1, ("D", "U"): 2.0})
        assert set(chain.states) == {"U", "D"}
        assert chain.exit_rate("D") == pytest.approx(2.0)


class TestGeneratorMatrix:
    def test_rows_sum_to_zero(self):
        chain = two_state_availability_chain(mttf=100.0, mttr=2.0)
        q = chain.generator_matrix().toarray()
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_diagonal_is_negative_exit_rate(self):
        chain = two_state_availability_chain(mttf=100.0, mttr=2.0)
        q = chain.generator_matrix().toarray()
        assert q[0, 0] == pytest.approx(-1.0 / 100.0)
        assert q[1, 1] == pytest.approx(-0.5)


class TestSteadyState:
    def test_two_state_availability(self):
        chain = two_state_availability_chain(mttf=99.0, mttr=1.0)
        pi = chain.steady_state()
        assert pi["UP"] == pytest.approx(0.99)
        assert pi["DOWN"] == pytest.approx(0.01)

    def test_distribution_sums_to_one(self):
        chain = two_state_availability_chain(mttf=4000.0, mttr=1.0)
        assert sum(chain.steady_state().values()) == pytest.approx(1.0)

    def test_birth_death_chain_matches_closed_form(self):
        # M/M/1-like chain truncated at 3 customers, lambda=1, mu=2.
        chain = ContinuousTimeMarkovChain([0, 1, 2, 3])
        for n in range(3):
            chain.add_transition(n, n + 1, 1.0)
            chain.add_transition(n + 1, n, 2.0)
        pi = chain.steady_state()
        rho = 0.5
        normalisation = sum(rho**n for n in range(4))
        for n in range(4):
            assert pi[n] == pytest.approx(rho**n / normalisation)

    def test_probability_of_predicate(self):
        chain = two_state_availability_chain(mttf=9.0, mttr=1.0)
        assert chain.probability_of(lambda state: state == "UP") == pytest.approx(0.9)

    def test_expected_reward(self):
        chain = two_state_availability_chain(mttf=9.0, mttr=1.0)
        assert chain.expected_reward({"UP": 1.0, "DOWN": 0.0}) == pytest.approx(0.9)
        assert chain.expected_reward(lambda s: 5.0) == pytest.approx(5.0)

    def test_stiff_disaster_chain(self):
        # Disaster rates (1/876000 h) against repairs of minutes: stiff system.
        chain = two_state_availability_chain(mttf=876000.0, mttr=8760.0)
        pi = chain.steady_state()
        assert pi["UP"] == pytest.approx(876000.0 / (876000.0 + 8760.0), rel=1e-9)


class TestTransient:
    def test_transient_starts_at_initial_state(self):
        chain = two_state_availability_chain(mttf=10.0, mttr=1.0)
        pi = chain.transient(0.0, "UP")
        assert pi["UP"] == pytest.approx(1.0)

    def test_transient_matches_closed_form_two_state(self):
        mttf, mttr = 10.0, 2.0
        lam, mu = 1.0 / mttf, 1.0 / mttr
        chain = two_state_availability_chain(mttf, mttr)
        for t in (0.5, 1.0, 5.0, 20.0):
            expected = mu / (lam + mu) + lam / (lam + mu) * np.exp(-(lam + mu) * t)
            assert chain.transient(t, "UP")["UP"] == pytest.approx(expected, rel=1e-6)

    def test_transient_converges_to_steady_state(self):
        chain = two_state_availability_chain(mttf=10.0, mttr=1.0)
        transient = chain.transient(1e4, "DOWN")
        steady = chain.steady_state()
        assert transient["UP"] == pytest.approx(steady["UP"], rel=1e-6)

    def test_transient_from_distribution(self):
        chain = two_state_availability_chain(mttf=10.0, mttr=1.0)
        pi = chain.transient(1.0, {"UP": 0.5, "DOWN": 0.5})
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_expected_transient_reward(self):
        chain = two_state_availability_chain(mttf=10.0, mttr=1.0)
        values = chain.expected_transient_reward({"UP": 1.0}, [0.0, 1.0, 10.0], "UP")
        assert values[0] == pytest.approx(1.0)
        assert np.all(np.diff(values) <= 1e-9)


class TestMeanTimeToAbsorption:
    def test_single_exponential(self):
        chain = ContinuousTimeMarkovChain(["UP", "FAILED"])
        chain.add_transition("UP", "FAILED", 0.01)
        assert chain.mean_time_to_absorption(["FAILED"], "UP") == pytest.approx(100.0)

    def test_two_stage_failure(self):
        chain = ContinuousTimeMarkovChain(["OK", "DEGRADED", "FAILED"])
        chain.add_transition("OK", "DEGRADED", 0.1)
        chain.add_transition("DEGRADED", "FAILED", 0.5)
        assert chain.mean_time_to_absorption(["FAILED"], "OK") == pytest.approx(12.0)

    def test_requires_absorbing_states(self):
        chain = two_state_availability_chain(10.0, 1.0)
        with pytest.raises(AnalysisError):
            chain.mean_time_to_absorption([], "UP")

    def test_unreachable_absorbing_state_raises(self):
        chain = ContinuousTimeMarkovChain(["A", "B", "C"])
        chain.add_transition("A", "B", 1.0)
        chain.add_transition("B", "A", 1.0)
        with pytest.raises(AnalysisError):
            chain.mean_time_to_absorption(["C"], "A")

    def test_unreachable_absorbing_state_emits_no_scipy_warning(self):
        """The singularity is detected up front: no MatrixRankWarning leaks
        into the caller (the pyproject filter would turn one into an error,
        but the check here is independent of pytest configuration)."""
        import warnings

        chain = ContinuousTimeMarkovChain(["A", "B", "C"])
        chain.add_transition("A", "B", 1.0)
        chain.add_transition("B", "A", 1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(AnalysisError, match="cannot reach"):
                chain.mean_time_to_absorption(["C"], "A")

    def test_partially_stranded_chain_raises_cleanly(self):
        """Only one branch can reach absorption: the expected hitting time
        is still infinite and must be reported without a scipy warning."""
        import warnings

        chain = ContinuousTimeMarkovChain(["START", "GOOD", "STUCK", "END"])
        chain.add_transition("START", "GOOD", 1.0)
        chain.add_transition("START", "STUCK", 1.0)
        chain.add_transition("GOOD", "END", 2.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(AnalysisError, match="STUCK"):
                chain.mean_time_to_absorption(["END"], "START")

    def test_reachable_chain_with_cycles_still_solves(self):
        chain = ContinuousTimeMarkovChain(["UP", "DEGRADED", "FAILED"])
        chain.add_transition("UP", "DEGRADED", 0.1)
        chain.add_transition("DEGRADED", "UP", 1.0)
        chain.add_transition("DEGRADED", "FAILED", 0.5)
        value = chain.mean_time_to_absorption(["FAILED"], "UP")
        # First-step analysis: E[UP] = 10 + E[DEG], E[DEG] = 2/3 + (2/3)E[UP].
        assert value == pytest.approx(32.0, rel=1e-12)
