"""Tests for the DTMC model."""

import pytest

from repro.exceptions import ModelError
from repro.markov import DiscreteTimeMarkovChain


def weather_chain():
    chain = DiscreteTimeMarkovChain(["sunny", "rainy"])
    chain.set_probability("sunny", "sunny", 0.8)
    chain.set_probability("sunny", "rainy", 0.2)
    chain.set_probability("rainy", "sunny", 0.5)
    chain.set_probability("rainy", "rainy", 0.5)
    return chain


class TestConstruction:
    def test_duplicate_states_rejected(self):
        with pytest.raises(ModelError):
            DiscreteTimeMarkovChain(["A", "A"])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            DiscreteTimeMarkovChain([])

    def test_invalid_probability_rejected(self):
        chain = DiscreteTimeMarkovChain(["A", "B"])
        with pytest.raises(ModelError):
            chain.set_probability("A", "B", 1.5)

    def test_validate_accepts_stochastic_rows(self):
        weather_chain().validate()

    def test_validate_rejects_bad_rows(self):
        chain = DiscreteTimeMarkovChain(["A", "B"])
        chain.set_probability("A", "B", 0.4)
        with pytest.raises(ModelError):
            chain.validate()

    def test_validate_accepts_absorbing_rows(self):
        chain = DiscreteTimeMarkovChain(["A", "B"])
        chain.set_probability("A", "B", 1.0)
        chain.validate()  # row B sums to zero -> absorbing, allowed


class TestSteadyState:
    def test_weather_chain(self):
        pi = weather_chain().steady_state()
        # Solve pi = pi P: pi_sunny = 5/7.
        assert pi["sunny"] == pytest.approx(5.0 / 7.0)
        assert pi["rainy"] == pytest.approx(2.0 / 7.0)

    def test_distribution_sums_to_one(self):
        assert sum(weather_chain().steady_state().values()) == pytest.approx(1.0)


class TestAbsorptionProbabilities:
    def test_gambler_ruin_three_states(self):
        # States 0 and 2 absorbing, fair coin from state 1.
        chain = DiscreteTimeMarkovChain([0, 1, 2])
        chain.set_probability(1, 0, 0.5)
        chain.set_probability(1, 2, 0.5)
        result = chain.absorption_probabilities([0, 2])
        assert result[1][0] == pytest.approx(0.5)
        assert result[1][2] == pytest.approx(0.5)

    def test_chained_transient_states(self):
        chain = DiscreteTimeMarkovChain(["v1", "v2", "t1", "t2"])
        chain.set_probability("v1", "v2", 0.5)
        chain.set_probability("v1", "t1", 0.5)
        chain.set_probability("v2", "t2", 1.0)
        result = chain.absorption_probabilities(["t1", "t2"])
        assert result["v1"]["t1"] == pytest.approx(0.5)
        assert result["v1"]["t2"] == pytest.approx(0.5)
        assert result["v2"]["t2"] == pytest.approx(1.0)

    def test_all_states_absorbing_returns_empty(self):
        chain = DiscreteTimeMarkovChain(["a", "b"])
        assert chain.absorption_probabilities(["a", "b"]) == {}

    def test_probabilities_sum_to_one_per_transient_state(self):
        chain = DiscreteTimeMarkovChain(["v", "a", "b", "c"])
        chain.set_probability("v", "a", 0.2)
        chain.set_probability("v", "b", 0.3)
        chain.set_probability("v", "c", 0.5)
        result = chain.absorption_probabilities(["a", "b", "c"])
        assert sum(result["v"].values()) == pytest.approx(1.0)
