"""Tests for Markov reward structures."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.markov import (
    ContinuousTimeMarkovChain,
    RewardReport,
    RewardStructure,
    two_state_availability_chain,
)


class TestRewardStructure:
    def test_indicator_reward(self):
        chain = two_state_availability_chain(mttf=9.0, mttr=1.0)
        availability = RewardStructure.indicator("availability", lambda s: s == "UP")
        assert availability.steady_state_value(chain) == pytest.approx(0.9)

    def test_mapping_reward_with_default(self):
        chain = two_state_availability_chain(mttf=3.0, mttr=1.0)
        capacity = RewardStructure.from_mapping("capacity", {"UP": 8.0}, default=0.0)
        assert capacity.steady_state_value(chain) == pytest.approx(6.0)

    def test_callable_reward(self):
        chain = two_state_availability_chain(mttf=1.0, mttr=1.0)
        structure = RewardStructure("constant", lambda s: 2.5)
        assert structure.steady_state_value(chain) == pytest.approx(2.5)


class TestRewardReport:
    def test_multiple_structures_evaluated_together(self):
        chain = ContinuousTimeMarkovChain(["UP2", "UP1", "DOWN"])
        chain.add_transition("UP2", "UP1", 0.2)
        chain.add_transition("UP1", "DOWN", 0.2)
        chain.add_transition("UP1", "UP2", 1.0)
        chain.add_transition("DOWN", "UP1", 1.0)
        report = RewardReport(chain)
        report.add(RewardStructure.indicator("availability", lambda s: s != "DOWN"))
        report.add(
            RewardStructure.from_mapping("capacity", {"UP2": 2.0, "UP1": 1.0}, default=0.0)
        )
        values = report.evaluate()
        assert set(values) == {"availability", "capacity"}
        assert 0.0 < values["availability"] < 1.0
        assert values["capacity"] > values["availability"]

    def test_add_returns_report_for_chaining(self):
        chain = two_state_availability_chain(2.0, 1.0)
        report = RewardReport(chain).add(
            RewardStructure.indicator("availability", lambda s: s == "UP")
        )
        assert isinstance(report, RewardReport)
        assert report.evaluate()["availability"] == pytest.approx(2.0 / 3.0)


class TestBatchEvaluation:
    def make_report(self):
        chain = ContinuousTimeMarkovChain(["UP2", "UP1", "DOWN"])
        chain.add_transition("UP2", "UP1", 0.2)
        chain.add_transition("UP1", "DOWN", 0.2)
        chain.add_transition("UP1", "UP2", 1.0)
        chain.add_transition("DOWN", "UP1", 1.0)
        report = RewardReport(chain)
        report.add(RewardStructure.indicator("availability", lambda s: s != "DOWN"))
        report.add(
            RewardStructure.from_mapping("capacity", {"UP2": 2.0, "UP1": 1.0})
        )
        return report

    def test_reward_vector_walks_states_once(self):
        structure = RewardStructure.from_mapping("c", {"UP2": 2.0, "UP1": 1.0})
        np.testing.assert_allclose(
            structure.reward_vector(["UP2", "UP1", "DOWN"]), [2.0, 1.0, 0.0]
        )

    def test_reward_matrix_stacks_columns(self):
        report = self.make_report()
        matrix = report.reward_matrix()
        assert matrix.shape == (3, 2)
        np.testing.assert_allclose(matrix[:, 0], [1.0, 1.0, 0.0])
        np.testing.assert_allclose(matrix[:, 1], [2.0, 1.0, 0.0])

    def test_batch_matches_scalar_evaluation(self):
        report = self.make_report()
        pi = report.chain.steady_state_vector()
        scalar = report.evaluate()
        batch = report.evaluate_batch(np.vstack([pi, pi]))
        assert batch.shape == (2, 2)
        for row in batch:
            assert row[0] == pytest.approx(scalar["availability"], abs=1e-14)
            assert row[1] == pytest.approx(scalar["capacity"], abs=1e-14)

    def test_structure_batch_matches_steady_state_value(self):
        chain = two_state_availability_chain(mttf=9.0, mttr=1.0)
        structure = RewardStructure.indicator("availability", lambda s: s == "UP")
        pi = chain.steady_state_vector()
        values = structure.evaluate_batch(chain.states, np.vstack([pi, pi, pi]))
        assert values.shape == (3,)
        assert np.allclose(values, structure.steady_state_value(chain))

    def test_distinct_rows_evaluated_independently(self):
        report = self.make_report()
        block = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        values = report.evaluate_batch(block)
        np.testing.assert_allclose(values[0], [1.0, 2.0])
        np.testing.assert_allclose(values[1], [0.0, 0.0])

    def test_wrong_width_rejected(self):
        report = self.make_report()
        with pytest.raises(AnalysisError):
            report.evaluate_batch(np.zeros((2, 5)))
        structure = RewardStructure.indicator("a", lambda s: True)
        with pytest.raises(AnalysisError):
            structure.evaluate_batch(["UP", "DOWN"], np.zeros((1, 3)))
