"""Tests for Markov reward structures."""

import pytest

from repro.markov import (
    ContinuousTimeMarkovChain,
    RewardReport,
    RewardStructure,
    two_state_availability_chain,
)


class TestRewardStructure:
    def test_indicator_reward(self):
        chain = two_state_availability_chain(mttf=9.0, mttr=1.0)
        availability = RewardStructure.indicator("availability", lambda s: s == "UP")
        assert availability.steady_state_value(chain) == pytest.approx(0.9)

    def test_mapping_reward_with_default(self):
        chain = two_state_availability_chain(mttf=3.0, mttr=1.0)
        capacity = RewardStructure.from_mapping("capacity", {"UP": 8.0}, default=0.0)
        assert capacity.steady_state_value(chain) == pytest.approx(6.0)

    def test_callable_reward(self):
        chain = two_state_availability_chain(mttf=1.0, mttr=1.0)
        structure = RewardStructure("constant", lambda s: 2.5)
        assert structure.steady_state_value(chain) == pytest.approx(2.5)


class TestRewardReport:
    def test_multiple_structures_evaluated_together(self):
        chain = ContinuousTimeMarkovChain(["UP2", "UP1", "DOWN"])
        chain.add_transition("UP2", "UP1", 0.2)
        chain.add_transition("UP1", "DOWN", 0.2)
        chain.add_transition("UP1", "UP2", 1.0)
        chain.add_transition("DOWN", "UP1", 1.0)
        report = RewardReport(chain)
        report.add(RewardStructure.indicator("availability", lambda s: s != "DOWN"))
        report.add(
            RewardStructure.from_mapping("capacity", {"UP2": 2.0, "UP1": 1.0}, default=0.0)
        )
        values = report.evaluate()
        assert set(values) == {"availability", "capacity"}
        assert 0.0 < values["availability"] < 1.0
        assert values["capacity"] > values["availability"]

    def test_add_returns_report_for_chaining(self):
        chain = two_state_availability_chain(2.0, 1.0)
        report = RewardReport(chain).add(
            RewardStructure.indicator("availability", lambda s: s == "UP")
        )
        assert isinstance(report, RewardReport)
        assert report.evaluate()["availability"] == pytest.approx(2.0 / 3.0)
