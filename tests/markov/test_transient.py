"""Tests for transient analysis by uniformization."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.exceptions import AnalysisError
from repro.markov import transient_distribution, transient_rewards


def generator(failure_rate=0.1, repair_rate=1.0):
    return np.array(
        [[-failure_rate, failure_rate], [repair_rate, -repair_rate]], dtype=float
    )


def random_generator(n, seed):
    rng = np.random.default_rng(seed)
    rates = rng.uniform(0.0, 1.5, size=(n, n))
    np.fill_diagonal(rates, 0.0)
    q = rates.copy()
    np.fill_diagonal(q, -rates.sum(axis=1))
    return q


class TestTransientDistribution:
    def test_time_zero_returns_initial(self):
        pi = transient_distribution(generator(), [1.0, 0.0], 0.0)
        assert np.allclose(pi, [1.0, 0.0])

    def test_matches_matrix_exponential(self):
        q = random_generator(5, seed=42)
        pi0 = np.zeros(5)
        pi0[0] = 1.0
        for t in (0.1, 1.0, 4.0):
            expected = pi0 @ expm(q * t)
            computed = transient_distribution(q, pi0, t)
            assert np.allclose(computed, expected, atol=1e-9)

    def test_long_horizon_reaches_steady_state(self):
        q = generator(0.2, 2.0)
        pi = transient_distribution(q, [0.0, 1.0], 500.0)
        assert pi[0] == pytest.approx(2.0 / 2.2, rel=1e-6)

    def test_probability_conserved(self):
        q = random_generator(8, seed=1)
        pi = transient_distribution(q, np.full(8, 1.0 / 8.0), 3.0)
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0.0)

    def test_zero_generator_is_identity(self):
        pi = transient_distribution(np.zeros((3, 3)), [0.2, 0.3, 0.5], 10.0)
        assert np.allclose(pi, [0.2, 0.3, 0.5])

    def test_invalid_initial_distribution_rejected(self):
        with pytest.raises(AnalysisError):
            transient_distribution(generator(), [0.7, 0.7], 1.0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(AnalysisError):
            transient_distribution(generator(), [1.0, 0.0, 0.0], 1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(AnalysisError):
            transient_distribution(generator(), [1.0, 0.0], -1.0)


def stiff_generator(scale=1e4):
    """Three-state chain with rates spanning eight orders of magnitude.

    A fast failure/repair pair (rates ~scale) coexists with a slow disaster
    path (rates ~1/scale): the uniformization rate is driven by the fast
    pair, so accuracy on the slow dynamics is exactly what Jensen's method
    must not lose.
    """
    q = np.array(
        [
            [0.0, scale, 1.0 / scale],
            [scale, 0.0, 0.0],
            [1.0 / scale, 0.0, 0.0],
        ]
    )
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


class TestStiffChainsAgainstExpm:
    """Uniformization vs a dense matrix-exponential reference (satellite)."""

    @pytest.mark.parametrize("scale", [1e2, 1e3, 1e4])
    @pytest.mark.parametrize("time", [1e-3, 0.1, 1.0])
    def test_stiff_three_state_chain(self, scale, time):
        q = stiff_generator(scale)
        pi0 = np.array([1.0, 0.0, 0.0])
        expected = pi0 @ expm(q * time)
        computed = transient_distribution(q, pi0, time)
        assert np.allclose(computed, expected, atol=1e-9)

    def test_random_stiff_generator(self):
        rng = np.random.default_rng(7)
        n = 6
        rates = rng.uniform(0.5, 1.5, size=(n, n))
        # Stretch the rows across five orders of magnitude to make the
        # chain stiff while keeping a valid generator.
        rates *= np.logspace(-2, 3, n)[:, np.newaxis]
        np.fill_diagonal(rates, 0.0)
        q = rates.copy()
        np.fill_diagonal(q, -rates.sum(axis=1))
        pi0 = np.full(n, 1.0 / n)
        for time in (0.01, 0.5, 2.0):
            expected = pi0 @ expm(q * time)
            computed = transient_distribution(q, pi0, time)
            assert np.allclose(computed, expected, atol=1e-9)

    def test_sparse_generator_matches_dense(self):
        from scipy import sparse

        q = stiff_generator(1e3)
        pi0 = np.array([0.0, 0.5, 0.5])
        dense = transient_distribution(q, pi0, 0.25)
        sparse_result = transient_distribution(sparse.csr_matrix(q), pi0, 0.25)
        assert np.allclose(dense, sparse_result, atol=1e-12)

    def test_stiff_rewards_match_expm_reference(self):
        q = stiff_generator(1e3)
        pi0 = np.array([1.0, 0.0, 0.0])
        rewards = np.array([1.0, 0.25, 0.0])
        times = [1e-3, 0.1, 1.0, 10.0]
        expected = [float((pi0 @ expm(q * t)) @ rewards) for t in times]
        computed = transient_rewards(q, pi0, rewards, times)
        assert np.allclose(computed, expected, atol=1e-9)


class TestTransientRewards:
    def test_instantaneous_availability_curve(self):
        q = generator(0.1, 1.0)
        times = [0.0, 1.0, 10.0, 100.0]
        availability = transient_rewards(q, [1.0, 0.0], [1.0, 0.0], times)
        # Starts at 1, decreases monotonically towards steady state 1/1.1*1 ≈ 0.909.
        assert availability[0] == pytest.approx(1.0)
        assert np.all(np.diff(availability) <= 1e-12)
        assert availability[-1] == pytest.approx(1.0 / 1.1, rel=1e-4)

    def test_reward_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            transient_rewards(generator(), [1.0, 0.0], [1.0, 0.0, 0.0], [1.0])
