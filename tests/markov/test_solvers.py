"""Tests for the stationary-distribution solvers."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import AnalysisError
from repro.markov import steady_state, validate_generator


def two_state_generator(failure_rate=0.01, repair_rate=1.0):
    return np.array(
        [[-failure_rate, failure_rate], [repair_rate, -repair_rate]], dtype=float
    )


def random_generator(n, seed):
    rng = np.random.default_rng(seed)
    rates = rng.uniform(0.1, 2.0, size=(n, n))
    np.fill_diagonal(rates, 0.0)
    q = rates.copy()
    np.fill_diagonal(q, -rates.sum(axis=1))
    return q


ALL_METHODS = ["direct", "gth", "power", "gauss_seidel"]


class TestValidateGenerator:
    def test_valid_generator_passes(self):
        validate_generator(two_state_generator())

    def test_negative_off_diagonal_rejected(self):
        q = np.array([[-1.0, 1.0], [-0.5, 0.5]])
        q[1, 0] = -0.5
        with pytest.raises(AnalysisError):
            validate_generator(q)

    def test_nonzero_row_sum_rejected(self):
        q = np.array([[-1.0, 2.0], [1.0, -1.0]])
        with pytest.raises(AnalysisError):
            validate_generator(q)

    def test_non_square_rejected(self):
        with pytest.raises(AnalysisError):
            validate_generator(np.zeros((2, 3)))


class TestSteadyState:
    @pytest.mark.parametrize("method", ALL_METHODS + ["auto"])
    def test_two_state_chain(self, method):
        pi = steady_state(two_state_generator(0.01, 1.0), method=method)
        assert pi[0] == pytest.approx(1.0 / 1.01, rel=1e-8)
        assert pi.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_methods_agree_on_random_chain(self, method):
        q = random_generator(12, seed=7)
        reference = steady_state(q, method="gth")
        candidate = steady_state(q, method=method, tolerance=1e-13)
        assert np.allclose(candidate, reference, atol=1e-7)

    def test_sparse_input_accepted(self):
        q = sparse.csr_matrix(two_state_generator())
        pi = steady_state(q)
        assert pi.shape == (2,)

    def test_single_state_chain(self):
        assert steady_state(np.zeros((1, 1)))[0] == 1.0

    def test_empty_chain_rejected(self):
        with pytest.raises(AnalysisError):
            steady_state(np.zeros((0, 0)))

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            steady_state(two_state_generator(), method="mystery")

    def test_stiff_chain_gth_accuracy(self):
        # Rates spanning 9 orders of magnitude (disaster vs. VM restart).
        q = np.array(
            [
                [-1.1415525e-6, 1.1415525e-6, 0.0],
                [0.0, -12.0, 12.0],
                [1.0e-1, 0.0, -1.0e-1],
            ]
        )
        pi_gth = steady_state(q, method="gth")
        pi_direct = steady_state(q, method="direct")
        assert np.allclose(pi_gth, pi_direct, rtol=1e-6)
        assert pi_gth.sum() == pytest.approx(1.0)

    def test_power_iteration_convergence_failure_reported(self):
        q = random_generator(6, seed=3)
        with pytest.raises(AnalysisError):
            steady_state(q, method="power", max_iterations=1)

    def test_larger_random_chain_direct_vs_gauss_seidel(self):
        q = random_generator(60, seed=11)
        direct = steady_state(q, method="direct")
        iterative = steady_state(q, method="gauss_seidel", tolerance=1e-13)
        assert np.allclose(direct, iterative, atol=1e-8)
