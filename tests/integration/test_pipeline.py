"""End-to-end integration tests across the whole stack.

These tests cross-validate the independent evaluation paths of the library on
configurations small enough for exact analysis: RBD closed forms vs. SPN
analysis, analytic CTMC solution vs. Monte-Carlo simulation, full vs.
symmetry-lumped state spaces, and the parametric re-rating used by the sweep
runner vs. building a fresh model.
"""

import pytest

from repro.core import (
    CaseStudyParameters,
    CloudSystemModel,
    ComponentParameters,
    DistributedScenario,
    HierarchicalParameters,
    build_simple_component,
    single_datacenter_spec,
)
from repro.metrics import availability_from_mttf_mttr
from repro.network import BRASILIA, RIO_DE_JANEIRO
from repro.spn import (
    ProbabilityMeasure,
    generate_tangible_reachability_graph,
    simulate,
    solve_steady_state,
    solve_transient,
)


class TestRbdSpnConsistency:
    def test_simple_component_matches_rbd_equivalent(self):
        """A SIMPLE_COMPONENT parameterised by an RBD's equivalent MTTF/MTTR
        has exactly the RBD's availability (the hierarchical step is lossless
        for steady-state availability)."""
        hierarchy = HierarchicalParameters.from_components(ComponentParameters())
        for result in (hierarchy.os_pm, hierarchy.nas_net):
            net = build_simple_component("X", result.mttf, result.mttr)
            solution = solve_steady_state(net)
            assert solution.probability("#X_UP > 0") == pytest.approx(
                result.availability, rel=1e-9
            )

    def test_independent_simple_components_multiply(self):
        """Availability of independent components composes multiplicatively,
        matching the series RBD of the same components."""
        from repro.spn import merge

        net = merge(
            "pair",
            [
                build_simple_component("A", 1000.0, 12.0),
                build_simple_component("B", 4000.0, 1.0),
            ],
        )
        solution = solve_steady_state(net)
        both = solution.probability("#A_UP > 0 AND #B_UP > 0")
        expected = availability_from_mttf_mttr(1000.0, 12.0) * availability_from_mttf_mttr(
            4000.0, 1.0
        )
        assert both == pytest.approx(expected, rel=1e-9)


class TestLumpingExactness:
    @pytest.mark.parametrize("machines", [2, 3])
    def test_symmetry_reduction_preserves_availability(self, machines):
        model = CloudSystemModel(spec=single_datacenter_spec(machines=machines))
        expression = model.availability_expression()
        full = model.solve(symmetry_reduction=False)
        lumped = model.solve(symmetry_reduction=True)
        assert lumped.number_of_states < full.number_of_states
        assert lumped.probability(expression) == pytest.approx(
            full.probability(expression), rel=1e-9
        )

    def test_symmetry_reduction_preserves_expected_vms(self):
        model = CloudSystemModel(spec=single_datacenter_spec(machines=2))
        full = model.expected_running_vms(model.solve(symmetry_reduction=False))
        lumped = model.expected_running_vms(model.solve(symmetry_reduction=True))
        assert lumped == pytest.approx(full, rel=1e-9)


class TestAnalyticSimulationAgreement:
    def test_single_site_model(self):
        model = CloudSystemModel(
            spec=single_datacenter_spec(machines=2, required_running_vms=1)
        )
        expression = model.availability_expression()
        analytic = solve_steady_state(model.build()).probability(expression)
        simulated = simulate(
            model.build(),
            [ProbabilityMeasure("availability", expression)],
            horizon=150_000.0,
            replications=4,
            seed=7,
        )
        assert simulated["availability"].mean == pytest.approx(analytic, abs=0.01)


class TestSweepRunnerConsistency:
    def test_re_rated_solution_matches_fresh_model(self):
        """The parametric re-rating used for the Figure 7 sweep gives the
        same availability as building and solving a brand-new model."""
        from repro.casestudy import DistributedSweepRunner

        parameters = CaseStudyParameters(required_running_vms=1)
        runner = DistributedSweepRunner(parameters=parameters, machines_per_datacenter=1)
        scenario = DistributedScenario(
            RIO_DE_JANEIRO, BRASILIA, alpha=0.45, disaster_mean_time_years=300.0
        )
        via_runner = runner.evaluate(scenario).availability.availability
        fresh = scenario.build_model(parameters)
        # Rebuild the spec at the runner's reduced scale for a fair comparison.
        from repro.core.datacenter import two_datacenter_spec
        from repro.core.scenarios import BACKUP_LOCATION

        spec = two_datacenter_spec(
            first_location=RIO_DE_JANEIRO,
            second_location=BRASILIA,
            backup_location=BACKUP_LOCATION,
            machines_per_datacenter=1,
            required_running_vms=1,
        )
        fresh = CloudSystemModel(
            spec=spec,
            parameters=parameters.with_disaster_mean_time(300.0),
            alpha=0.45,
        )
        assert via_runner == pytest.approx(fresh.availability().availability, rel=1e-9)


class TestTransientBehaviour:
    def test_point_availability_starts_high_and_approaches_steady_state(self):
        model = CloudSystemModel(
            spec=single_datacenter_spec(machines=1, required_running_vms=1)
        )
        expression = model.availability_expression()
        transient = solve_transient(model.build(), times=[0.0, 10.0, 100_000.0])
        curve = transient.probability(expression)
        steady = solve_steady_state(model.build()).probability(expression)
        assert curve[0] == pytest.approx(1.0)
        assert curve[1] < 1.0
        assert curve[2] == pytest.approx(steady, rel=1e-3)
