"""Tests for tangible reachability-graph generation."""

import pytest

from repro.exceptions import StateSpaceError
from repro.spn import (
    CompiledNet,
    StochasticPetriNet,
    generate_tangible_reachability_graph,
    resolve_vanishing,
)

from tests.spn.nets import (
    guarded_failover,
    immediate_routing,
    machine_repair,
    mm1k_queue,
    simple_component,
)


class TestSimpleComponentGraph:
    def test_two_tangible_states(self):
        graph = generate_tangible_reachability_graph(simple_component("X"))
        assert graph.number_of_states == 2
        assert graph.number_of_transitions == 2

    def test_rates_match_parameters(self):
        graph = generate_tangible_reachability_graph(
            simple_component("X", mttf=100.0, mttr=2.0)
        )
        rates = sorted(graph.transitions.values())
        assert rates == pytest.approx([0.01, 0.5])

    def test_initial_distribution_is_on_state(self):
        graph = generate_tangible_reachability_graph(simple_component("X"))
        assert graph.initial_distribution == {0: 1.0}
        assert graph.marking_view(0)["X_ON"] == 1


class TestQueueGraphs:
    def test_mm1k_state_count(self):
        graph = generate_tangible_reachability_graph(mm1k_queue(capacity=3))
        assert graph.number_of_states == 4  # 0..3 customers

    def test_machine_repair_state_count(self):
        graph = generate_tangible_reachability_graph(machine_repair(machines=4))
        assert graph.number_of_states == 5

    def test_infinite_server_rates_in_graph(self):
        graph = generate_tangible_reachability_graph(
            machine_repair(machines=2, mttf=10.0, mttr=1.0)
        )
        # From the all-working state both machines race: aggregate rate 0.2.
        initial = next(iter(graph.initial_distribution))
        outgoing = [rate for (src, _), rate in graph.transitions.items() if src == initial]
        assert outgoing == [pytest.approx(0.2)]

    def test_throughput_contributions_recorded(self):
        graph = generate_tangible_reachability_graph(mm1k_queue())
        assert "ARRIVAL" in graph.throughput_contributions
        assert len(graph.throughput_contributions["ARRIVAL"]) == 3  # not in full state


class TestVanishingResolution:
    def test_immediate_routing_probabilities(self):
        net = CompiledNet(immediate_routing(weight_a=1.0, weight_b=3.0))
        # After ARRIVE fires we land on the vanishing CHOICE marking.
        choice_marking = (0, 1, 0, 0)
        distribution = resolve_vanishing(net, choice_marking)
        assert len(distribution) == 2
        probabilities = sorted(distribution.values())
        assert probabilities == pytest.approx([0.25, 0.75])

    def test_tangible_marking_resolves_to_itself(self):
        net = CompiledNet(simple_component("X"))
        assert resolve_vanishing(net, (1, 0)) == {(1, 0): 1.0}

    def test_vanishing_initial_marking_is_redistributed(self):
        net = StochasticPetriNet("n")
        net.add_place("START", 1)
        net.add_place("LEFT", 0)
        net.add_place("RIGHT", 0)
        net.add_immediate_transition("GO_LEFT", weight=1.0)
        net.add_immediate_transition("GO_RIGHT", weight=1.0)
        net.add_timed_transition("BACK_L", delay=1.0)
        net.add_timed_transition("BACK_R", delay=1.0)
        net.add_input_arc("START", "GO_LEFT")
        net.add_output_arc("GO_LEFT", "LEFT")
        net.add_input_arc("START", "GO_RIGHT")
        net.add_output_arc("GO_RIGHT", "RIGHT")
        net.add_input_arc("LEFT", "BACK_L")
        net.add_output_arc("BACK_L", "START")
        net.add_input_arc("RIGHT", "BACK_R")
        net.add_output_arc("BACK_R", "START")
        graph = generate_tangible_reachability_graph(net)
        assert len(graph.initial_distribution) == 2
        assert sum(graph.initial_distribution.values()) == pytest.approx(1.0)

    def test_chained_immediates_resolve_through_multiple_levels(self):
        net = StochasticPetriNet("n")
        for name in ("A", "B", "C", "SINK"):
            net.add_place(name, 1 if name == "A" else 0)
        net.add_immediate_transition("AB")
        net.add_immediate_transition("BC")
        net.add_timed_transition("RESET", delay=1.0)
        net.add_input_arc("A", "AB")
        net.add_output_arc("AB", "B")
        net.add_input_arc("B", "BC")
        net.add_output_arc("BC", "C")
        net.add_input_arc("C", "RESET")
        net.add_output_arc("RESET", "SINK")
        compiled = CompiledNet(net)
        distribution = resolve_vanishing(compiled, compiled.initial_marking)
        assert list(distribution.values()) == [pytest.approx(1.0)]
        (marking,) = distribution
        assert marking[compiled.place_index["C"]] == 1

    def test_immediate_cycle_detected(self):
        net = StochasticPetriNet("trap")
        net.add_place("A", 1)
        net.add_place("B", 0)
        net.add_immediate_transition("AB")
        net.add_immediate_transition("BA")
        net.add_input_arc("A", "AB")
        net.add_output_arc("AB", "B")
        net.add_input_arc("B", "BA")
        net.add_output_arc("BA", "A")
        with pytest.raises(StateSpaceError):
            generate_tangible_reachability_graph(net)


class TestGuardsInReachability:
    def test_failover_graph_has_no_vanishing_states(self):
        graph = generate_tangible_reachability_graph(guarded_failover())
        compiled = graph.net
        for marking in graph.markings:
            assert not compiled.is_vanishing(marking)

    def test_failover_spare_follows_primary(self):
        graph = generate_tangible_reachability_graph(guarded_failover())
        for state_id in range(graph.number_of_states):
            view = graph.marking_view(state_id)
            if view["PRIMARY_ON"] == 1:
                assert view["SPARE_ACTIVE"] == 0
            else:
                assert view["SPARE_ACTIVE"] == 1


class TestStateSpaceLimit:
    def test_limit_enforced(self):
        with pytest.raises(StateSpaceError):
            generate_tangible_reachability_graph(machine_repair(machines=50), max_states=10)

    def test_unbounded_net_hits_limit(self):
        net = StochasticPetriNet("unbounded")
        net.add_place("P", 0)
        net.add_timed_transition("SOURCE", delay=1.0)
        net.add_output_arc("SOURCE", "P")
        with pytest.raises(StateSpaceError):
            generate_tangible_reachability_graph(net, max_states=100)
