"""Tests for parametric re-rating of reachability graphs."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.spn import (
    generate_tangible_reachability_graph,
    generator_matrix,
    solve_steady_state,
    with_transition_delays,
    with_transition_rates,
)

from tests.spn.nets import machine_repair, simple_component


def graph_for(mttf=100.0, mttr=2.0):
    return generate_tangible_reachability_graph(simple_component("X", mttf, mttr))


class TestWithTransitionRates:
    def test_re_rated_graph_matches_fresh_generation(self):
        base = graph_for(mttf=100.0, mttr=2.0)
        re_rated = with_transition_rates(base, {"X_Failure": 1.0 / 50.0, "X_Repair": 1.0 / 5.0})
        fresh = graph_for(mttf=50.0, mttr=5.0)
        a_re_rated = solve_steady_state(re_rated).probability("#X_ON > 0")
        a_fresh = solve_steady_state(fresh).probability("#X_ON > 0")
        assert a_re_rated == pytest.approx(a_fresh, rel=1e-12)

    def test_unmentioned_transitions_keep_original_rates(self):
        base = graph_for(mttf=100.0, mttr=2.0)
        re_rated = with_transition_rates(base, {"X_Repair": 1.0})
        assert re_rated.base_rates["X_Failure"] == pytest.approx(0.01)
        assert re_rated.base_rates["X_Repair"] == pytest.approx(1.0)

    def test_original_graph_not_mutated(self):
        base = graph_for(mttf=100.0, mttr=2.0)
        original_rates = dict(base.base_rates)
        original_edges = dict(base.transitions)
        with_transition_rates(base, {"X_Failure": 0.5})
        assert base.base_rates == original_rates
        assert base.transitions == original_edges

    def test_throughput_contributions_re_rated(self):
        base = graph_for(mttf=100.0, mttr=2.0)
        re_rated = with_transition_rates(base, {"X_Failure": 0.02})
        solution = solve_steady_state(re_rated)
        availability = solution.probability("#X_ON > 0")
        assert solution.throughput("X_Failure") == pytest.approx(availability * 0.02)

    def test_infinite_server_coefficients_preserved(self):
        base = generate_tangible_reachability_graph(machine_repair(machines=3, mttf=10.0, mttr=1.0))
        re_rated = with_transition_delays(base, {"FAIL": 20.0, "REPAIR": 2.0})
        fresh = generate_tangible_reachability_graph(machine_repair(machines=3, mttf=20.0, mttr=2.0))
        assert solve_steady_state(re_rated).expected_tokens("#BROKEN") == pytest.approx(
            solve_steady_state(fresh).expected_tokens("#BROKEN"), rel=1e-12
        )

    def test_unknown_transition_rejected(self):
        with pytest.raises(AnalysisError):
            with_transition_rates(graph_for(), {"missing": 1.0})

    def test_non_positive_rate_rejected(self):
        with pytest.raises(AnalysisError):
            with_transition_rates(graph_for(), {"X_Failure": 0.0})

    def test_graph_without_coefficients_rejected(self):
        base = graph_for()
        stripped = type(base)(
            net=base.net,
            markings=base.markings,
            initial_distribution=base.initial_distribution,
            transitions=base.transitions,
        )
        with pytest.raises(AnalysisError):
            with_transition_rates(stripped, {"X_Failure": 1.0})


class TestGeneratorEquivalence:
    """A re-rated graph's generator must equal a freshly generated one.

    Stronger than comparing solved measures: every matrix entry has to
    match, for several distinct rate vectors, on both single-server and
    infinite-server nets.  (State discovery order does not depend on rates,
    so the state ids of the fresh graph line up with the re-rated one.)
    """

    RATE_VECTORS = ((50.0, 5.0), (400.0, 0.25))

    def test_simple_component_entry_for_entry(self):
        base = graph_for(mttf=100.0, mttr=2.0)
        for mttf, mttr in self.RATE_VECTORS:
            re_rated = with_transition_delays(
                base, {"X_Failure": mttf, "X_Repair": mttr}
            )
            fresh = graph_for(mttf=mttf, mttr=mttr)
            np.testing.assert_allclose(
                generator_matrix(re_rated).toarray(),
                generator_matrix(fresh).toarray(),
                atol=1e-12,
            )

    def test_infinite_server_entry_for_entry(self):
        base = generate_tangible_reachability_graph(
            machine_repair(machines=4, mttf=10.0, mttr=1.0)
        )
        for mttf, mttr in self.RATE_VECTORS:
            re_rated = with_transition_delays(base, {"FAIL": mttf, "REPAIR": mttr})
            fresh = generate_tangible_reachability_graph(
                machine_repair(machines=4, mttf=mttf, mttr=mttr)
            )
            assert re_rated.markings == fresh.markings
            np.testing.assert_allclose(
                generator_matrix(re_rated).toarray(),
                generator_matrix(fresh).toarray(),
                atol=1e-12,
            )


class TestSparseNativeRepresentation:
    def test_edge_arrays_match_dict_view(self):
        graph = graph_for()
        assert graph.transitions == {
            (int(s), int(t)): float(r)
            for s, t, r in zip(
                graph.edge_sources, graph.edge_targets, graph.edge_rates
            )
        }

    def test_edge_rates_are_coefficient_matvec(self):
        graph = generate_tangible_reachability_graph(
            machine_repair(machines=3, mttf=10.0, mttr=1.0)
        )
        reconstructed = graph.edge_coefficient_matrix.T.dot(graph.rate_vector)
        np.testing.assert_allclose(reconstructed, graph.edge_rates, atol=1e-12)

    def test_throughput_vector_matches_dict_view(self):
        graph = generate_tangible_reachability_graph(
            machine_repair(machines=3, mttf=10.0, mttr=1.0)
        )
        for name, contributions in graph.throughput_contributions.items():
            vector = graph.throughput_vector(name)
            for state_id, rate in contributions.items():
                assert vector[state_id] == pytest.approx(rate)

    def test_re_rated_graph_shares_structure_arrays(self):
        base = graph_for()
        re_rated = with_transition_rates(base, {"X_Failure": 0.5})
        assert re_rated.edge_sources is base.edge_sources
        assert re_rated.edge_targets is base.edge_targets
        assert re_rated.edge_coefficient_matrix is base.edge_coefficient_matrix
        assert re_rated.markings is base.markings


class TestWithTransitionDelays:
    def test_delays_are_inverted_rates(self):
        base = graph_for(mttf=100.0, mttr=2.0)
        re_rated = with_transition_delays(base, {"X_Failure": 200.0})
        assert re_rated.base_rates["X_Failure"] == pytest.approx(0.005)

    def test_non_positive_delay_rejected(self):
        with pytest.raises(AnalysisError):
            with_transition_delays(graph_for(), {"X_Failure": 0.0})

    def test_chained_re_rating_is_consistent(self):
        base = graph_for(mttf=100.0, mttr=2.0)
        once = with_transition_delays(base, {"X_Failure": 50.0})
        twice = with_transition_delays(once, {"X_Repair": 4.0})
        fresh = graph_for(mttf=50.0, mttr=4.0)
        assert solve_steady_state(twice).probability("#X_ON > 0") == pytest.approx(
            solve_steady_state(fresh).probability("#X_ON > 0"), rel=1e-12
        )
