"""Tests for the incidence-matrix kernel."""

import numpy as np
import pytest

from repro.spn import CompiledNet, StochasticPetriNet
from repro.spn.kernel import NO_INHIBITOR, IncidenceKernel

from tests.spn.nets import guarded_failover, machine_repair, mm1k_queue


def kernel_of(net) -> IncidenceKernel:
    return CompiledNet(net).kernel()


def marking_block(net: CompiledNet, *markings) -> np.ndarray:
    return np.asarray(markings, dtype=np.int64)


class TestIncidenceArrays:
    def test_mm1k_matrices(self):
        compiled = CompiledNet(mm1k_queue(capacity=3))
        kernel = compiled.kernel()
        arrival = compiled.transition_index["ARRIVAL"]
        free = compiled.place_index["FREE"]
        queue = compiled.place_index["QUEUE"]
        assert kernel.input_requirement[arrival, free] == 1
        assert kernel.delta[arrival, free] == -1
        assert kernel.delta[arrival, queue] == 1
        assert (kernel.inhibitor_matrix == NO_INHIBITOR).all()

    def test_kernel_is_cached_on_the_compiled_net(self):
        compiled = CompiledNet(mm1k_queue())
        assert compiled.kernel() is compiled.kernel()

    def test_duplicate_input_arcs_flagged(self):
        net = StochasticPetriNet("dup")
        net.add_place("P", 5)
        net.add_timed_transition("T", delay=1.0)
        net.add_input_arc("P", "T", multiplicity=2)
        net.add_input_arc("P", "T", multiplicity=3)
        kernel = kernel_of(net)
        # Enabling needs the max multiplicity, firing consumes the sum.
        assert kernel.firing_can_go_negative
        assert kernel.input_requirement[0, 0] == 3
        assert kernel.input_total[0, 0] == 5


class TestEnabledAndDegrees:
    def test_enabled_matches_scalar_for_every_marking(self):
        compiled = CompiledNet(machine_repair(machines=3))
        kernel = compiled.kernel()
        block = marking_block(compiled, (3, 0), (2, 1), (0, 3), (1, 2))
        mask = kernel.enabled(block, np.arange(len(compiled.transitions)))
        for row, marking in enumerate(block):
            for column, transition in enumerate(compiled.transitions):
                assert mask[row, column] == transition.is_enabled(marking)

    def test_guards_respected_in_batch(self):
        compiled = CompiledNet(guarded_failover())
        kernel = compiled.kernel()
        transitions = np.arange(len(compiled.transitions))
        block = np.asarray(
            [[1, 0, 1, 0], [0, 1, 1, 0], [0, 1, 0, 1], [1, 0, 0, 1]], dtype=np.int64
        )
        mask = kernel.enabled(block, transitions)
        for row, marking in enumerate(block):
            for column, transition in enumerate(compiled.transitions):
                assert mask[row, column] == transition.is_enabled(marking)

    def test_degrees_match_scalar(self):
        compiled = CompiledNet(machine_repair(machines=5))
        kernel = compiled.kernel()
        block = marking_block(compiled, (5, 0), (3, 2), (1, 4))
        degrees = kernel.enabling_degrees(block, np.arange(len(compiled.transitions)))
        for row, marking in enumerate(block):
            for column, transition in enumerate(compiled.transitions):
                assert degrees[row, column] == transition.enabling_degree(marking)

    def test_large_block_path_matches_small_block_path(self):
        compiled = CompiledNet(guarded_failover())
        kernel = compiled.kernel()
        transitions = np.arange(len(compiled.transitions))
        rng = np.random.default_rng(1)
        big = rng.integers(0, 2, size=(3000, 4)).astype(np.int64)
        expected = np.vstack(
            [kernel.enabled(big[k : k + 1], transitions)[0] for k in range(64)]
        )
        np.testing.assert_array_equal(kernel.enabled(big, transitions)[:64], expected)


class TestSingleMarkingQueries:
    def test_timed_effective_rates(self):
        compiled = CompiledNet(machine_repair(machines=4, mttf=10.0, mttr=1.0))
        kernel = compiled.kernel()
        marking = np.asarray([3, 1], dtype=np.int64)
        enabled, rates = kernel.timed_effective_rates(marking)
        assert enabled.all()
        # FAIL is infinite-server: 3 working machines race.
        fail = [i for i, t in enumerate(compiled.timed_transitions) if t.name == "FAIL"][0]
        assert rates[fail] == pytest.approx(0.3)

    def test_enabled_immediate_indices_priority(self):
        net = StochasticPetriNet("prio")
        net.add_place("A", 1)
        net.add_place("B", 0)
        net.add_place("C", 0)
        net.add_immediate_transition("LOW", priority=1)
        net.add_immediate_transition("HIGH", priority=2)
        net.add_input_arc("A", "LOW")
        net.add_output_arc("LOW", "B")
        net.add_input_arc("A", "HIGH")
        net.add_output_arc("HIGH", "C")
        compiled = CompiledNet(net)
        kernel = compiled.kernel()
        winners = kernel.enabled_immediate_indices(np.asarray([1, 0, 0], dtype=np.int64))
        names = [compiled.immediate_transitions[i].name for i in winners]
        assert names == ["HIGH"]


class TestPriorityClassCache:
    def test_classes_sorted_descending(self):
        net = StochasticPetriNet("classes")
        net.add_place("A", 1)
        for name, priority in (("P1", 1), ("P3", 3), ("P2", 2)):
            net.add_immediate_transition(name, priority=priority)
            net.add_input_arc("A", name)
        compiled = CompiledNet(net)
        priorities = [
            transitions[0].priority
            for transitions in compiled.immediate_priority_classes
        ]
        assert priorities == [3, 2, 1]

    def test_enabled_immediate_returns_top_class_only(self):
        net = StochasticPetriNet("classes")
        net.add_place("A", 1)
        net.add_place("B", 1)
        net.add_immediate_transition("LOW", priority=1)
        net.add_immediate_transition("HIGH", priority=5)
        net.add_input_arc("A", "LOW")
        net.add_input_arc("B", "HIGH")
        compiled = CompiledNet(net)
        assert [t.name for t in compiled.enabled_immediate((1, 1))] == ["HIGH"]
        # With B empty only the low class remains.
        assert [t.name for t in compiled.enabled_immediate((1, 0))] == ["LOW"]
