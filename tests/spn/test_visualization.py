"""Tests for Graphviz export."""

import pytest

from repro.spn import StochasticPetriNet, to_dot, write_dot

from tests.spn.nets import guarded_failover, simple_component


class TestToDot:
    def test_contains_places_and_transitions(self):
        dot = to_dot(simple_component("X"))
        assert dot.startswith("digraph")
        assert '"X_ON"' in dot
        assert '"X_Failure"' in dot
        assert dot.rstrip().endswith("}")

    def test_immediate_transitions_filled(self):
        dot = to_dot(guarded_failover())
        assert "style=filled" in dot
        assert "pri=" in dot

    def test_guards_included_by_default(self):
        dot = to_dot(guarded_failover())
        assert "#PRIMARY_ON" in dot

    def test_guards_can_be_suppressed(self):
        dot = to_dot(guarded_failover(), include_guards=False)
        assert "#PRIMARY_ON" not in dot

    def test_arc_multiplicity_labelled(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 4)
        net.add_place("Q", 0)
        net.add_timed_transition("T", delay=1.0)
        net.add_input_arc("P", "T", multiplicity=2)
        net.add_output_arc("T", "Q", multiplicity=3)
        net.add_inhibitor_arc("Q", "T", multiplicity=5)
        dot = to_dot(net)
        assert 'label="2"' in dot
        assert 'label="3"' in dot
        assert "odot" in dot

    def test_initial_tokens_shown(self):
        dot = to_dot(simple_component("X"))
        assert "X_ON\\n1" in dot


class TestWriteDot:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "net.dot"
        write_dot(simple_component("X"), str(path))
        content = path.read_text()
        assert content.startswith("digraph")
        assert content.endswith("}\n")
