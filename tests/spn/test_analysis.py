"""Tests for steady-state and transient SPN analysis."""

import math

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ModelError
from repro.metrics import availability_from_mttf_mttr
from repro.spn import (
    ExpectedTokensMeasure,
    ProbabilityMeasure,
    ThroughputMeasure,
    generate_tangible_reachability_graph,
    solve_steady_state,
    solve_transient,
    to_markov_chain,
)

from tests.spn.nets import (
    guarded_failover,
    immediate_routing,
    machine_repair,
    mm1k_queue,
    simple_component,
)


class TestSimpleComponentSteadyState:
    def test_availability_matches_closed_form(self):
        mttf, mttr = 100.0, 2.0
        solution = solve_steady_state(simple_component("X", mttf, mttr))
        expected = availability_from_mttf_mttr(mttf, mttr)
        assert solution.probability("#X_ON > 0") == pytest.approx(expected)

    def test_paper_operator_notation(self):
        solution = solve_steady_state(simple_component("DC", 876000.0, 8760.0))
        # P{#DC_ON>0} with the disaster parameters of the case study.
        assert solution.probability("#DC_ON>0") == pytest.approx(
            876000.0 / (876000.0 + 8760.0)
        )

    def test_expected_tokens(self):
        solution = solve_steady_state(simple_component("X", 100.0, 2.0))
        availability = solution.probability("#X_ON > 0")
        assert solution.expected_tokens("#X_ON") == pytest.approx(availability)
        assert solution.expected_tokens("X_ON") == pytest.approx(availability)

    def test_throughput_of_failure_transition(self):
        mttf, mttr = 100.0, 2.0
        solution = solve_steady_state(simple_component("X", mttf, mttr))
        availability = mttf / (mttf + mttr)
        assert solution.throughput("X_Failure") == pytest.approx(availability / mttf)

    def test_failure_and_repair_throughputs_balance(self):
        solution = solve_steady_state(simple_component("X", 37.0, 3.0))
        assert solution.throughput("X_Failure") == pytest.approx(
            solution.throughput("X_Repair")
        )


class TestQueueSteadyState:
    def test_mm1k_distribution_matches_closed_form(self):
        arrival_mean, service_mean, capacity = 2.0, 1.0, 3
        rho = service_mean / arrival_mean
        solution = solve_steady_state(mm1k_queue(arrival_mean, service_mean, capacity))
        normalisation = sum(rho**n for n in range(capacity + 1))
        for n in range(capacity + 1):
            assert solution.probability(f"#QUEUE = {n}") == pytest.approx(
                rho**n / normalisation
            )

    def test_machine_repair_expected_broken_machines(self):
        machines, mttf, mttr = 3, 10.0, 1.0
        solution = solve_steady_state(machine_repair(machines, mttf, mttr, repair_crews=machines))
        # With as many repair crews as machines each machine is independent.
        unavailability = mttr / (mttf + mttr)
        assert solution.expected_tokens("#BROKEN") == pytest.approx(
            machines * unavailability
        )

    def test_probability_vector_sums_to_one(self):
        solution = solve_steady_state(mm1k_queue())
        assert solution.probabilities.sum() == pytest.approx(1.0)
        assert solution.number_of_states == 4


class TestImmediateRouting:
    def test_path_probabilities_follow_weights(self):
        solution = solve_steady_state(immediate_routing(weight_a=1.0, weight_b=3.0))
        on_a = solution.probability("#PATH_A = 1")
        on_b = solution.probability("#PATH_B = 1")
        # Both paths have the same service time, so the visit ratio 1:3 carries over.
        assert on_b / on_a == pytest.approx(3.0, rel=1e-9)


class TestMeasureObjects:
    def test_evaluate_measure_collection(self):
        solution = solve_steady_state(simple_component("X", 100.0, 2.0))
        results = solution.evaluate(
            [
                ProbabilityMeasure("availability", "#X_ON > 0"),
                ExpectedTokensMeasure("tokens_on", "#X_ON"),
                ThroughputMeasure("failures_per_hour", "X_Failure"),
            ]
        )
        assert set(results) == {"availability", "tokens_on", "failures_per_hour"}
        assert results["availability"] == pytest.approx(results["tokens_on"])

    def test_unknown_transition_throughput_rejected(self):
        solution = solve_steady_state(simple_component("X"))
        with pytest.raises(ModelError):
            solution.throughput("missing")

    def test_marking_probabilities_sorted(self):
        solution = solve_steady_state(simple_component("X", 100.0, 2.0))
        pairs = solution.marking_probabilities()
        assert pairs[0][1] >= pairs[1][1]
        assert pairs[0][0]["X_ON"] == 1


class TestGuardedFailoverAnalysis:
    def test_spare_active_probability_equals_primary_down(self):
        solution = solve_steady_state(guarded_failover(primary_mttf=10.0, primary_mttr=2.0))
        down = solution.probability("#PRIMARY_ON = 0")
        spare = solution.probability("#SPARE_ACTIVE = 1")
        assert spare == pytest.approx(down)
        assert down == pytest.approx(2.0 / 12.0)


class TestReuseOfReachabilityGraph:
    def test_solving_from_pregenerated_graph(self):
        graph = generate_tangible_reachability_graph(simple_component("X", 50.0, 5.0))
        solution = solve_steady_state(graph)
        assert solution.probability("#X_ON > 0") == pytest.approx(50.0 / 55.0)

    def test_markov_chain_export_agrees(self):
        graph = generate_tangible_reachability_graph(simple_component("X", 50.0, 5.0))
        chain = to_markov_chain(graph)
        pi = chain.steady_state()
        on_state = next(
            state_id
            for state_id in range(graph.number_of_states)
            if graph.marking_view(state_id)["X_ON"] == 1
        )
        assert pi[on_state] == pytest.approx(50.0 / 55.0)


class TestTransientAnalysis:
    def test_instantaneous_availability_curve(self):
        mttf, mttr = 10.0, 2.0
        lam, mu = 1.0 / mttf, 1.0 / mttr
        solution = solve_transient(simple_component("X", mttf, mttr), times=[0.0, 1.0, 5.0, 50.0])
        availability = solution.probability("#X_ON > 0")
        for value, t in zip(availability, solution.times):
            expected = mu / (lam + mu) + lam / (lam + mu) * math.exp(-(lam + mu) * t)
            assert value == pytest.approx(expected, rel=1e-6)

    def test_expected_tokens_transient(self):
        solution = solve_transient(machine_repair(machines=2, mttf=10.0, mttr=1.0), times=[0.0, 100.0])
        broken = solution.expected_tokens("#BROKEN")
        assert broken[0] == pytest.approx(0.0)
        assert broken[1] > 0.0

    def test_requires_at_least_one_time(self):
        with pytest.raises(AnalysisError):
            solve_transient(simple_component("X"), times=[])
