"""Tests for the compiled-net enabling / firing logic."""

import pytest

from repro.exceptions import ModelError
from repro.spn import CompiledNet, ServerSemantics, StochasticPetriNet

from tests.spn.nets import guarded_failover, machine_repair, simple_component


def compiled_simple():
    return CompiledNet(simple_component("X", mttf=100.0, mttr=2.0))


class TestCompiledNetStructure:
    def test_place_index_and_initial_marking(self):
        net = compiled_simple()
        assert net.place_index == {"X_ON": 0, "X_OFF": 1}
        assert net.initial_marking == (1, 0)

    def test_transition_partition(self):
        net = CompiledNet(guarded_failover())
        assert {t.name for t in net.immediate_transitions} == {"ACTIVATE", "DEACTIVATE"}
        assert {t.name for t in net.timed_transitions} == {"P_FAIL", "P_REPAIR"}

    def test_transition_named_lookup(self):
        net = compiled_simple()
        assert net.transition_named("X_Failure").rate == pytest.approx(0.01)
        with pytest.raises(ModelError):
            net.transition_named("nope")


class TestEnabling:
    def test_enabled_in_initial_marking(self):
        net = compiled_simple()
        failure = net.transition_named("X_Failure")
        repair = net.transition_named("X_Repair")
        assert failure.is_enabled((1, 0))
        assert not repair.is_enabled((1, 0))
        assert repair.is_enabled((0, 1))

    def test_guard_blocks_enabled_transition(self):
        net = CompiledNet(guarded_failover())
        activate = net.transition_named("ACTIVATE")
        # marking order: PRIMARY_ON, PRIMARY_OFF, SPARE_IDLE, SPARE_ACTIVE
        assert not activate.is_enabled((1, 0, 1, 0))
        assert activate.is_enabled((0, 1, 1, 0))

    def test_inhibitor_arc_disables(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 1)
        net.add_place("BLOCK", 0)
        net.add_place("OUT", 0)
        net.add_timed_transition("T", delay=1.0)
        net.add_input_arc("P", "T")
        net.add_output_arc("T", "OUT")
        net.add_inhibitor_arc("BLOCK", "T", multiplicity=1)
        compiled = CompiledNet(net)
        transition = compiled.transition_named("T")
        assert transition.is_enabled((1, 0, 0))
        assert not transition.is_enabled((1, 1, 0))

    def test_multiplicity_requirement(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 3)
        net.add_place("OUT", 0)
        net.add_timed_transition("T", delay=1.0)
        net.add_input_arc("P", "T", multiplicity=2)
        net.add_output_arc("T", "OUT")
        compiled = CompiledNet(net)
        transition = compiled.transition_named("T")
        assert transition.is_enabled((2, 0))
        assert not transition.is_enabled((1, 0))


class TestRatesAndFiring:
    def test_single_server_rate_independent_of_tokens(self):
        net = CompiledNet(machine_repair(machines=3, mttf=10.0, mttr=1.0, repair_crews=1))
        repair = net.transition_named("REPAIR")
        assert repair.effective_rate((0, 3)) == pytest.approx(1.0)
        assert repair.effective_rate((2, 1)) == pytest.approx(1.0)

    def test_infinite_server_rate_scales_with_degree(self):
        net = CompiledNet(machine_repair(machines=3, mttf=10.0, mttr=1.0))
        fail = net.transition_named("FAIL")
        assert fail.effective_rate((3, 0)) == pytest.approx(0.3)
        assert fail.effective_rate((1, 2)) == pytest.approx(0.1)

    def test_enabling_degree_with_multiplicity(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 5)
        net.add_place("OUT", 0)
        net.add_timed_transition("T", delay=1.0, semantics=ServerSemantics.INFINITE_SERVER)
        net.add_input_arc("P", "T", multiplicity=2)
        net.add_output_arc("T", "OUT")
        compiled = CompiledNet(net)
        assert compiled.transition_named("T").enabling_degree((5, 0)) == 2

    def test_fire_moves_tokens(self):
        net = compiled_simple()
        failure = net.transition_named("X_Failure")
        assert failure.fire((1, 0)) == (0, 1)

    def test_fire_with_insufficient_tokens_raises(self):
        net = compiled_simple()
        failure = net.transition_named("X_Failure")
        with pytest.raises(ModelError):
            failure.fire((0, 1))

    def test_effective_rate_rejected_for_immediate(self):
        net = CompiledNet(guarded_failover())
        with pytest.raises(ModelError):
            net.transition_named("ACTIVATE").effective_rate((0, 1, 1, 0))


class TestMarkingClassification:
    def test_vanishing_detection(self):
        net = CompiledNet(guarded_failover())
        # Primary just failed, spare still idle -> ACTIVATE enabled -> vanishing.
        assert net.is_vanishing((0, 1, 1, 0))
        # Primary up, spare idle -> DEACTIVATE requires a SPARE_ACTIVE token -> tangible.
        assert not net.is_vanishing((1, 0, 1, 0))

    def test_enabled_immediate_respects_priority(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 1)
        net.add_place("A", 0)
        net.add_place("B", 0)
        net.add_immediate_transition("LOW", weight=1.0, priority=1)
        net.add_immediate_transition("HIGH", weight=1.0, priority=2)
        net.add_input_arc("P", "LOW")
        net.add_output_arc("LOW", "A")
        net.add_input_arc("P", "HIGH")
        net.add_output_arc("HIGH", "B")
        compiled = CompiledNet(net)
        enabled = compiled.enabled_immediate((1, 0, 0))
        assert [t.name for t in enabled] == ["HIGH"]

    def test_enabled_timed_listing(self):
        net = compiled_simple()
        assert [t.name for t in net.enabled_timed((1, 0))] == ["X_Failure"]
        assert [t.name for t in net.enabled_timed((0, 1))] == ["X_Repair"]
