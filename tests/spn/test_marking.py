"""Tests for marking views and conversion helpers."""

import pytest

from repro.exceptions import ModelError
from repro.spn import MarkingView, marking_vector


PLACE_INDEX = {"A": 0, "B": 1, "C": 2}


class TestMarkingView:
    def test_lookup_by_place_name(self):
        view = MarkingView((1, 0, 3), PLACE_INDEX)
        assert view["A"] == 1
        assert view["C"] == 3

    def test_mapping_protocol(self):
        view = MarkingView((1, 0, 3), PLACE_INDEX)
        assert len(view) == 3
        assert set(view) == {"A", "B", "C"}
        assert dict(view) == {"A": 1, "B": 0, "C": 3}

    def test_non_empty_places(self):
        view = MarkingView((1, 0, 3), PLACE_INDEX)
        assert view.non_empty_places() == {"A": 1, "C": 3}

    def test_tokens_property(self):
        assert MarkingView((1, 0, 3), PLACE_INDEX).tokens == (1, 0, 3)

    def test_unknown_place_raises(self):
        view = MarkingView((1, 0, 3), PLACE_INDEX)
        with pytest.raises(ModelError):
            _ = view["missing"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            MarkingView((1, 0), PLACE_INDEX)


class TestMarkingVector:
    def test_conversion_with_defaults(self):
        assert marking_vector({"A": 2}, PLACE_INDEX) == (2, 0, 0)

    def test_full_specification(self):
        assert marking_vector({"A": 1, "B": 2, "C": 3}, PLACE_INDEX) == (1, 2, 3)

    def test_unknown_place_rejected(self):
        with pytest.raises(ModelError):
            marking_vector({"Z": 1}, PLACE_INDEX)

    def test_negative_tokens_rejected(self):
        with pytest.raises(ModelError):
            marking_vector({"A": -1}, PLACE_INDEX)
