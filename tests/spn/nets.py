"""Reusable example nets for the SPN test-suite."""

from repro.spn import ServerSemantics, StochasticPetriNet


def simple_component(name="X", mttf=100.0, mttr=2.0, initially_on=True):
    """The paper's SIMPLE_COMPONENT block (Figure 2)."""
    net = StochasticPetriNet(f"SIMPLE_COMPONENT_{name}")
    net.add_place(f"{name}_ON", initial_tokens=1 if initially_on else 0)
    net.add_place(f"{name}_OFF", initial_tokens=0 if initially_on else 1)
    net.add_timed_transition(f"{name}_Failure", delay=mttf)
    net.add_timed_transition(f"{name}_Repair", delay=mttr)
    net.add_input_arc(f"{name}_ON", f"{name}_Failure")
    net.add_output_arc(f"{name}_Failure", f"{name}_OFF")
    net.add_input_arc(f"{name}_OFF", f"{name}_Repair")
    net.add_output_arc(f"{name}_Repair", f"{name}_ON")
    return net


def mm1k_queue(arrival_mean=2.0, service_mean=1.0, capacity=3):
    """An M/M/1/k queue as an SPN (single-server service)."""
    net = StochasticPetriNet("MM1K")
    net.add_place("FREE", initial_tokens=capacity)
    net.add_place("QUEUE", initial_tokens=0)
    net.add_timed_transition("ARRIVAL", delay=arrival_mean)
    net.add_timed_transition("SERVICE", delay=service_mean)
    net.add_input_arc("FREE", "ARRIVAL")
    net.add_output_arc("ARRIVAL", "QUEUE")
    net.add_input_arc("QUEUE", "SERVICE")
    net.add_output_arc("SERVICE", "FREE")
    return net


def machine_repair(machines=3, mttf=10.0, mttr=1.0, repair_crews=1):
    """Classic machine-repairman model: infinite-server failures, limited repair."""
    net = StochasticPetriNet("MACHINE_REPAIR")
    net.add_place("WORKING", initial_tokens=machines)
    net.add_place("BROKEN", initial_tokens=0)
    net.add_timed_transition("FAIL", delay=mttf, semantics=ServerSemantics.INFINITE_SERVER)
    semantics = (
        ServerSemantics.INFINITE_SERVER if repair_crews >= machines else ServerSemantics.SINGLE_SERVER
    )
    net.add_timed_transition("REPAIR", delay=mttr, semantics=semantics)
    net.add_input_arc("WORKING", "FAIL")
    net.add_output_arc("FAIL", "BROKEN")
    net.add_input_arc("BROKEN", "REPAIR")
    net.add_output_arc("REPAIR", "WORKING")
    return net


def immediate_routing(weight_a=1.0, weight_b=3.0):
    """A timed arrival routed by two competing immediate transitions."""
    net = StochasticPetriNet("ROUTING")
    net.add_place("SOURCE", initial_tokens=1)
    net.add_place("CHOICE", initial_tokens=0)
    net.add_place("PATH_A", initial_tokens=0)
    net.add_place("PATH_B", initial_tokens=0)
    net.add_timed_transition("ARRIVE", delay=1.0)
    net.add_immediate_transition("ROUTE_A", weight=weight_a)
    net.add_immediate_transition("ROUTE_B", weight=weight_b)
    net.add_timed_transition("DONE_A", delay=2.0)
    net.add_timed_transition("DONE_B", delay=2.0)
    net.add_input_arc("SOURCE", "ARRIVE")
    net.add_output_arc("ARRIVE", "CHOICE")
    net.add_input_arc("CHOICE", "ROUTE_A")
    net.add_output_arc("ROUTE_A", "PATH_A")
    net.add_input_arc("CHOICE", "ROUTE_B")
    net.add_output_arc("ROUTE_B", "PATH_B")
    net.add_input_arc("PATH_A", "DONE_A")
    net.add_output_arc("DONE_A", "SOURCE")
    net.add_input_arc("PATH_B", "DONE_B")
    net.add_output_arc("DONE_B", "SOURCE")
    return net


def guarded_failover(primary_mttf=10.0, primary_mttr=1.0):
    """A spare that is only allowed to run while the primary is down (guard test)."""
    net = StochasticPetriNet("FAILOVER")
    net.add_place("PRIMARY_ON", initial_tokens=1)
    net.add_place("PRIMARY_OFF", initial_tokens=0)
    net.add_place("SPARE_IDLE", initial_tokens=1)
    net.add_place("SPARE_ACTIVE", initial_tokens=0)
    net.add_timed_transition("P_FAIL", delay=primary_mttf)
    net.add_timed_transition("P_REPAIR", delay=primary_mttr)
    net.add_immediate_transition("ACTIVATE", guard="#PRIMARY_ON = 0")
    net.add_immediate_transition("DEACTIVATE", guard="#PRIMARY_ON > 0")
    net.add_input_arc("PRIMARY_ON", "P_FAIL")
    net.add_output_arc("P_FAIL", "PRIMARY_OFF")
    net.add_input_arc("PRIMARY_OFF", "P_REPAIR")
    net.add_output_arc("P_REPAIR", "PRIMARY_ON")
    net.add_input_arc("SPARE_IDLE", "ACTIVATE")
    net.add_output_arc("ACTIVATE", "SPARE_ACTIVE")
    net.add_input_arc("SPARE_ACTIVE", "DEACTIVATE")
    net.add_output_arc("DEACTIVATE", "SPARE_IDLE")
    return net
