"""Tests for structural net validation."""

import pytest

from repro.exceptions import ModelError
from repro.spn import Severity, StochasticPetriNet, validate

from tests.spn.nets import guarded_failover, simple_component


class TestValidNets:
    def test_simple_component_is_clean(self):
        assert validate(simple_component("X")) == []

    def test_guarded_failover_is_clean(self):
        assert validate(guarded_failover()) == []


class TestErrors:
    def test_guard_referencing_unknown_place(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 1)
        net.add_place("Q", 0)
        net.add_immediate_transition("T", guard="#MISSING > 0")
        net.add_input_arc("P", "T")
        net.add_output_arc("T", "Q")
        with pytest.raises(ModelError):
            validate(net)
        issues = validate(net, raise_on_error=False)
        assert any(issue.severity is Severity.ERROR for issue in issues)

    def test_guard_with_unresolved_identifier(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 1)
        net.add_place("Q", 0)
        net.add_immediate_transition("T", guard="#P > threshold")
        net.add_input_arc("P", "T")
        net.add_output_arc("T", "Q")
        issues = validate(net, raise_on_error=False)
        assert any("identifier" in issue.message for issue in issues)

    def test_disconnected_transition(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 1)
        net.add_timed_transition("T", delay=1.0)
        issues = validate(net, raise_on_error=False)
        assert any(issue.subject == "T" and issue.severity is Severity.ERROR for issue in issues)

    def test_unguarded_immediate_source(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 0)
        net.add_immediate_transition("T")
        net.add_output_arc("T", "P")
        with pytest.raises(ModelError):
            validate(net)


class TestWarnings:
    def test_timed_source_transition_warns(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 0)
        net.add_place("Q", 1)
        net.add_timed_transition("SOURCE", delay=1.0)
        net.add_output_arc("SOURCE", "P")
        net.add_timed_transition("DRAIN", delay=1.0)
        net.add_input_arc("P", "DRAIN")
        net.add_input_arc("Q", "DRAIN")
        issues = validate(net, raise_on_error=False)
        warnings = [issue for issue in issues if issue.severity is Severity.WARNING]
        assert any("unbounded" in issue.message for issue in warnings)

    def test_isolated_place_warns(self):
        net = simple_component("X")
        net.add_place("UNUSED", 0)
        issues = validate(net, raise_on_error=False)
        assert any(issue.subject == "UNUSED" for issue in issues)

    def test_place_only_used_in_guard_is_not_isolated(self):
        net = simple_component("X")
        net.add_place("FLAG", 1)
        net.add_immediate_transition("NOOP", guard="#FLAG = 0 AND #X_OFF > 0")
        net.add_input_arc("X_OFF", "NOOP")
        net.add_output_arc("NOOP", "X_OFF")
        issues = validate(net, raise_on_error=False)
        assert not any(issue.subject == "FLAG" for issue in issues)

    def test_errors_sorted_before_warnings(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 0)
        net.add_place("LONELY", 0)
        net.add_timed_transition("T", delay=1.0)  # disconnected -> error
        issues = validate(net, raise_on_error=False)
        severities = [issue.severity for issue in issues]
        assert severities == sorted(severities, key=lambda s: 0 if s is Severity.ERROR else 1)
