"""Property-based tests for the SPN engine (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.exceptions import StateSpaceError
from repro.metrics import availability_from_mttf_mttr
from repro.spn import (
    CompiledNet,
    StochasticPetriNet,
    generate_tangible_reachability_graph,
    generate_tangible_reachability_graph_scalar,
    graph_deviation,
    solve_steady_state,
)

from tests.spn.nets import machine_repair, mm1k_queue, simple_component

positive_time = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


@given(mttf=positive_time, mttr=positive_time)
@settings(max_examples=60, deadline=None)
def test_simple_component_availability_matches_closed_form(mttf, mttr):
    """P{#X_ON>0} equals MTTF/(MTTF+MTTR) for any parameter values."""
    solution = solve_steady_state(simple_component("X", mttf, mttr))
    expected = availability_from_mttf_mttr(mttf, mttr)
    assert solution.probability("#X_ON > 0") == pytest.approx(expected, rel=1e-9)


@given(
    machines=st.integers(min_value=1, max_value=6),
    mttf=positive_time,
    mttr=positive_time,
)
@settings(max_examples=40, deadline=None)
def test_machine_repair_token_conservation(machines, mttf, mttr):
    """Every tangible marking conserves the total number of machines."""
    graph = generate_tangible_reachability_graph(machine_repair(machines, mttf, mttr))
    for marking in graph.markings:
        assert sum(marking) == machines
    assert graph.number_of_states == machines + 1


@given(
    machines=st.integers(min_value=1, max_value=5),
    mttf=positive_time,
    mttr=positive_time,
)
@settings(max_examples=40, deadline=None)
def test_steady_state_probabilities_form_distribution(machines, mttf, mttr):
    """The stationary vector is a probability distribution."""
    solution = solve_steady_state(machine_repair(machines, mttf, mttr))
    assert solution.probabilities.sum() == pytest.approx(1.0)
    assert (solution.probabilities >= -1e-12).all()


@given(capacity=st.integers(min_value=1, max_value=8), arrival=positive_time, service=positive_time)
@settings(max_examples=40, deadline=None)
def test_mm1k_reachability_size_and_boundedness(capacity, arrival, service):
    """The M/M/1/k net has exactly capacity+1 tangible markings, all bounded."""
    graph = generate_tangible_reachability_graph(mm1k_queue(arrival, service, capacity))
    assert graph.number_of_states == capacity + 1
    for marking in graph.markings:
        assert max(marking) <= capacity


@given(mttf=positive_time, mttr=positive_time)
@settings(max_examples=30, deadline=None)
def test_probability_and_complement_sum_to_one(mttf, mttr):
    """P{expr} + P{NOT expr} = 1 for any marking predicate."""
    solution = solve_steady_state(simple_component("X", mttf, mttr))
    p_up = solution.probability("#X_ON > 0")
    p_down = solution.probability("NOT (#X_ON > 0)")
    assert p_up + p_down == pytest.approx(1.0)


@given(mttf=positive_time, mttr=positive_time)
@settings(max_examples=30, deadline=None)
def test_expected_tokens_matches_weighted_sum(mttf, mttr):
    """E{#p} equals the probability-weighted token count over all markings."""
    solution = solve_steady_state(simple_component("X", mttf, mttr))
    manual = sum(
        probability * marking[solution.graph.net.place_index["X_ON"]]
        for marking, probability in zip(solution.graph.markings, solution.probabilities)
    )
    assert solution.expected_tokens("#X_ON") == pytest.approx(manual)


# --- random-net equivalence of the vectorized and scalar explorers ----------


@st.composite
def random_gspn(draw):
    """A small random GSPN with inputs, outputs, inhibitors, guards and
    immediate transitions — the whole feature surface of the explorers."""
    n_places = draw(st.integers(min_value=2, max_value=4))
    net = StochasticPetriNet("RANDOM")
    for p in range(n_places):
        net.add_place(f"P{p}", initial_tokens=draw(st.integers(0, 2)))

    def attach_arcs(name, conserve_tokens=False):
        # Immediate transitions are kept token-non-increasing so that random
        # nets cannot grow markings through zero-time firings (which neither
        # explorer bounds by ``max_states``); immediate *cycles* remain
        # possible and must be reported by both explorers.
        n_inputs = draw(st.integers(1, 2))
        for place in draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=n_inputs,
                max_size=n_inputs,
                unique=True,
            )
        ):
            net.add_input_arc(f"P{place}", name, multiplicity=draw(st.integers(1, 2)))
        n_outputs = 1 if conserve_tokens else draw(st.integers(1, 2))
        for place in draw(
            st.lists(
                st.integers(0, n_places - 1),
                min_size=n_outputs,
                max_size=n_outputs,
                unique=True,
            )
        ):
            net.add_output_arc(
                name,
                f"P{place}",
                multiplicity=1 if conserve_tokens else draw(st.integers(1, 2)),
            )
        if draw(st.booleans()):
            place = draw(st.integers(0, n_places - 1))
            net.add_inhibitor_arc(f"P{place}", name, multiplicity=draw(st.integers(1, 3)))

    def maybe_guard():
        if not draw(st.booleans()):
            return None
        place = draw(st.integers(0, n_places - 1))
        operator = draw(st.sampled_from(["<", "<=", ">", ">=", "="]))
        level = draw(st.integers(0, 3))
        return f"#P{place} {operator} {level}"

    n_timed = draw(st.integers(1, 3))
    for t in range(n_timed):
        net.add_timed_transition(
            f"T{t}",
            delay=draw(st.floats(0.1, 100.0)),
            semantics=draw(st.sampled_from(["ss", "is"])),
            guard=maybe_guard(),
        )
        attach_arcs(f"T{t}")
    n_immediate = draw(st.integers(0, 2))
    for i in range(n_immediate):
        net.add_immediate_transition(
            f"I{i}",
            weight=draw(st.floats(0.5, 4.0)),
            priority=draw(st.integers(1, 2)),
            guard=maybe_guard(),
        )
        attach_arcs(f"I{i}", conserve_tokens=True)
    return net


@given(net=random_gspn())
@settings(max_examples=120, deadline=None)
def test_vectorized_explorer_matches_scalar_reference(net):
    """Both explorers agree on markings, edges and coefficients (Δ < 1e-12)
    — or fail identically (state-space limit, immediate cycle)."""
    try:
        scalar = generate_tangible_reachability_graph_scalar(net, max_states=300)
    except StateSpaceError:
        with pytest.raises(StateSpaceError):
            generate_tangible_reachability_graph(net, max_states=300)
        return
    vectorized = generate_tangible_reachability_graph(net, max_states=300)
    assert graph_deviation(scalar, vectorized) < 1e-12
    assert sorted(scalar.markings) == sorted(vectorized.markings)
    assert scalar.base_rates == vectorized.base_rates


@given(net=random_gspn(), chunk_size=st.integers(min_value=1, max_value=7))
@settings(max_examples=40, deadline=None)
def test_vectorized_explorer_chunk_size_invariance(net, chunk_size):
    """The wave size never changes the produced graph."""
    try:
        reference = generate_tangible_reachability_graph(net, max_states=300)
    except StateSpaceError:
        return
    chunked = generate_tangible_reachability_graph(
        net, max_states=300, chunk_size=chunk_size
    )
    assert graph_deviation(reference, chunked) < 1e-12
