"""Property-based tests for the SPN engine (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.metrics import availability_from_mttf_mttr
from repro.spn import (
    CompiledNet,
    generate_tangible_reachability_graph,
    solve_steady_state,
)

from tests.spn.nets import machine_repair, mm1k_queue, simple_component

positive_time = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


@given(mttf=positive_time, mttr=positive_time)
@settings(max_examples=60, deadline=None)
def test_simple_component_availability_matches_closed_form(mttf, mttr):
    """P{#X_ON>0} equals MTTF/(MTTF+MTTR) for any parameter values."""
    solution = solve_steady_state(simple_component("X", mttf, mttr))
    expected = availability_from_mttf_mttr(mttf, mttr)
    assert solution.probability("#X_ON > 0") == pytest.approx(expected, rel=1e-9)


@given(
    machines=st.integers(min_value=1, max_value=6),
    mttf=positive_time,
    mttr=positive_time,
)
@settings(max_examples=40, deadline=None)
def test_machine_repair_token_conservation(machines, mttf, mttr):
    """Every tangible marking conserves the total number of machines."""
    graph = generate_tangible_reachability_graph(machine_repair(machines, mttf, mttr))
    for marking in graph.markings:
        assert sum(marking) == machines
    assert graph.number_of_states == machines + 1


@given(
    machines=st.integers(min_value=1, max_value=5),
    mttf=positive_time,
    mttr=positive_time,
)
@settings(max_examples=40, deadline=None)
def test_steady_state_probabilities_form_distribution(machines, mttf, mttr):
    """The stationary vector is a probability distribution."""
    solution = solve_steady_state(machine_repair(machines, mttf, mttr))
    assert solution.probabilities.sum() == pytest.approx(1.0)
    assert (solution.probabilities >= -1e-12).all()


@given(capacity=st.integers(min_value=1, max_value=8), arrival=positive_time, service=positive_time)
@settings(max_examples=40, deadline=None)
def test_mm1k_reachability_size_and_boundedness(capacity, arrival, service):
    """The M/M/1/k net has exactly capacity+1 tangible markings, all bounded."""
    graph = generate_tangible_reachability_graph(mm1k_queue(arrival, service, capacity))
    assert graph.number_of_states == capacity + 1
    for marking in graph.markings:
        assert max(marking) <= capacity


@given(mttf=positive_time, mttr=positive_time)
@settings(max_examples=30, deadline=None)
def test_probability_and_complement_sum_to_one(mttf, mttr):
    """P{expr} + P{NOT expr} = 1 for any marking predicate."""
    solution = solve_steady_state(simple_component("X", mttf, mttr))
    p_up = solution.probability("#X_ON > 0")
    p_down = solution.probability("NOT (#X_ON > 0)")
    assert p_up + p_down == pytest.approx(1.0)


@given(mttf=positive_time, mttr=positive_time)
@settings(max_examples=30, deadline=None)
def test_expected_tokens_matches_weighted_sum(mttf, mttr):
    """E{#p} equals the probability-weighted token count over all markings."""
    solution = solve_steady_state(simple_component("X", mttf, mttr))
    manual = sum(
        probability * marking[solution.graph.net.place_index["X_ON"]]
        for marking, probability in zip(solution.graph.markings, solution.probabilities)
    )
    assert solution.expected_tokens("#X_ON") == pytest.approx(manual)
