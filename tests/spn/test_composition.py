"""Tests for net composition (union) and relabelling."""

import pytest

from repro.exceptions import ModelError
from repro.spn import merge, relabel, solve_steady_state

from tests.spn.nets import simple_component


class TestMerge:
    def test_disjoint_union_keeps_everything(self):
        merged = merge("pair", [simple_component("A"), simple_component("B")])
        assert set(merged.place_names) == {"A_ON", "A_OFF", "B_ON", "B_OFF"}
        assert len(merged.transitions) == 4
        assert len(merged.arcs) == 8

    def test_merged_components_stay_independent(self):
        merged = merge(
            "pair",
            [simple_component("A", 100.0, 1.0), simple_component("B", 10.0, 1.0)],
        )
        solution = solve_steady_state(merged)
        assert solution.probability("#A_ON > 0") == pytest.approx(100.0 / 101.0)
        assert solution.probability("#B_ON > 0") == pytest.approx(10.0 / 11.0)
        both = solution.probability("#A_ON > 0 AND #B_ON > 0")
        assert both == pytest.approx((100.0 / 101.0) * (10.0 / 11.0))

    def test_shared_place_fused(self):
        from repro.spn import StochasticPetriNet

        producer = StochasticPetriNet("producer")
        producer.add_place("BUFFER", 0)
        producer.add_place("IDLE", 1)
        producer.add_timed_transition("PRODUCE", delay=1.0)
        producer.add_input_arc("IDLE", "PRODUCE")
        producer.add_output_arc("PRODUCE", "BUFFER")

        consumer = StochasticPetriNet("consumer")
        consumer.add_place("BUFFER", 0)
        consumer.add_place("DONE", 0)
        consumer.add_timed_transition("CONSUME", delay=1.0)
        consumer.add_input_arc("BUFFER", "CONSUME")
        consumer.add_output_arc("CONSUME", "DONE")

        merged = merge("line", [producer, consumer])
        assert merged.place_names.count("BUFFER") == 1
        assert set(merged.place_names) == {"BUFFER", "IDLE", "DONE"}

    def test_conflicting_initial_markings_rejected(self):
        first = simple_component("A", initially_on=True)
        second = simple_component("A", initially_on=False)
        with pytest.raises(ModelError):
            merge("broken", [first, second])

    def test_duplicate_transition_names_rejected(self):
        with pytest.raises(ModelError):
            merge("broken", [simple_component("A"), simple_component("A")])

    def test_empty_merge_rejected(self):
        with pytest.raises(ModelError):
            merge("empty", [])


class TestRelabel:
    def test_prefix_applied_to_places_and_transitions(self):
        renamed = relabel(simple_component("X"), prefix="DC1_")
        assert set(renamed.place_names) == {"DC1_X_ON", "DC1_X_OFF"}
        assert set(renamed.transition_names) == {"DC1_X_Failure", "DC1_X_Repair"}

    def test_shared_places_not_renamed(self):
        from repro.spn import StochasticPetriNet

        net = StochasticPetriNet("block")
        net.add_place("LOCAL", 1)
        net.add_place("POOL", 0)
        net.add_timed_transition("MOVE", delay=1.0)
        net.add_input_arc("LOCAL", "MOVE")
        net.add_output_arc("MOVE", "POOL")
        renamed = relabel(net, prefix="PM1_", shared_places=["POOL"])
        assert set(renamed.place_names) == {"PM1_LOCAL", "POOL"}

    def test_guards_rewritten_to_renamed_places(self):
        from repro.spn import StochasticPetriNet

        net = StochasticPetriNet("block")
        net.add_place("A", 1)
        net.add_place("B", 0)
        net.add_immediate_transition("T", guard="#A > 0 AND #B = 0")
        net.add_input_arc("A", "T")
        net.add_output_arc("T", "B")
        renamed = relabel(net, prefix="X_")
        guard = renamed.transition("X_T").guard
        assert guard.places() == frozenset({"X_A", "X_B"})

    def test_guard_renaming_does_not_clobber_longer_names(self):
        from repro.spn import StochasticPetriNet

        net = StochasticPetriNet("block")
        net.add_place("UP", 1)
        net.add_place("UP1", 0)
        net.add_immediate_transition("T", guard="#UP1 = 0 AND #UP > 0")
        net.add_input_arc("UP", "T")
        net.add_output_arc("T", "UP1")
        renamed = relabel(net, prefix="N_")
        assert renamed.transition("N_T").guard.places() == frozenset({"N_UP", "N_UP1"})

    def test_relabelled_instances_can_be_merged(self):
        block = simple_component("X", 100.0, 1.0)
        merged = merge(
            "two", [relabel(block, "PM1_"), relabel(block, "PM2_")]
        )
        solution = solve_steady_state(merged)
        assert solution.probability("#PM1_X_ON > 0") == pytest.approx(100.0 / 101.0)
        assert solution.probability("#PM2_X_ON > 0") == pytest.approx(100.0 / 101.0)
