"""Tests for the discrete-event SPN simulator."""

import pytest

from repro.exceptions import SimulationError
from repro.spn import (
    ExpectedTokensMeasure,
    ProbabilityMeasure,
    StochasticPetriNet,
    ThroughputMeasure,
    simulate,
    solve_steady_state,
)

from tests.spn.nets import immediate_routing, machine_repair, simple_component


AVAILABILITY = ProbabilityMeasure("availability", "#X_ON > 0")


class TestAgainstAnalyticResults:
    def test_simple_component_availability(self):
        net = simple_component("X", mttf=100.0, mttr=10.0)
        analytic = solve_steady_state(net).probability("#X_ON > 0")
        result = simulate(net, [AVAILABILITY], horizon=50_000.0, replications=6, seed=42)
        estimate = result["availability"]
        assert estimate.mean == pytest.approx(analytic, abs=0.02)
        assert estimate.half_width < 0.05

    def test_machine_repair_expected_tokens(self):
        net = machine_repair(machines=3, mttf=10.0, mttr=1.0)
        analytic = solve_steady_state(net).expected_tokens("#BROKEN")
        result = simulate(
            net,
            [ExpectedTokensMeasure("broken", "#BROKEN")],
            horizon=20_000.0,
            replications=6,
            seed=7,
        )
        assert result.value("broken") == pytest.approx(analytic, rel=0.1)

    def test_throughput_estimate(self):
        net = simple_component("X", mttf=50.0, mttr=5.0)
        analytic = solve_steady_state(net).throughput("X_Failure")
        result = simulate(
            net,
            [ThroughputMeasure("failures", "X_Failure")],
            horizon=50_000.0,
            replications=6,
            seed=3,
        )
        assert result.value("failures") == pytest.approx(analytic, rel=0.15)

    def test_immediate_routing_weights_respected(self):
        net = immediate_routing(weight_a=1.0, weight_b=3.0)
        result = simulate(
            net,
            [
                ProbabilityMeasure("on_a", "#PATH_A = 1"),
                ProbabilityMeasure("on_b", "#PATH_B = 1"),
            ],
            horizon=20_000.0,
            replications=4,
            seed=11,
        )
        ratio = result.value("on_b") / result.value("on_a")
        assert ratio == pytest.approx(3.0, rel=0.2)


class TestReproducibility:
    def test_same_seed_gives_same_estimates(self):
        net = simple_component("X", mttf=100.0, mttr=10.0)
        first = simulate(net, [AVAILABILITY], horizon=1_000.0, replications=3, seed=5)
        second = simulate(net, [AVAILABILITY], horizon=1_000.0, replications=3, seed=5)
        assert first["availability"].replication_values == second["availability"].replication_values

    def test_different_seeds_differ(self):
        net = simple_component("X", mttf=100.0, mttr=10.0)
        first = simulate(net, [AVAILABILITY], horizon=1_000.0, replications=3, seed=5)
        second = simulate(net, [AVAILABILITY], horizon=1_000.0, replications=3, seed=6)
        assert (
            first["availability"].replication_values
            != second["availability"].replication_values
        )


class TestEstimates:
    def test_confidence_interval_contains_mean(self):
        net = simple_component("X", mttf=100.0, mttr=10.0)
        estimate = simulate(net, [AVAILABILITY], horizon=5_000.0, replications=5, seed=1)[
            "availability"
        ]
        assert estimate.lower <= estimate.mean <= estimate.upper
        assert estimate.contains(estimate.mean)

    def test_single_replication_has_zero_half_width(self):
        net = simple_component("X")
        estimate = simulate(net, [AVAILABILITY], horizon=500.0, replications=1, seed=1)[
            "availability"
        ]
        assert estimate.half_width == 0.0

    def test_zero_rate_transition_excluded_from_race(self):
        """A zero-rate timed transition must not poison the exponential race."""
        import math

        net = StochasticPetriNet("zero-rate")
        net.add_place("ON", 1)
        net.add_place("OFF", 0)
        net.add_timed_transition("NEVER", delay=math.inf)  # rate 0
        net.add_timed_transition("FLIP", delay=1.0)
        net.add_timed_transition("FLOP", delay=1.0)
        net.add_input_arc("ON", "NEVER")
        net.add_input_arc("ON", "FLIP")
        net.add_output_arc("FLIP", "OFF")
        net.add_input_arc("OFF", "FLOP")
        net.add_output_arc("FLOP", "ON")
        result = simulate(
            net,
            [ProbabilityMeasure("on", "#ON = 1")],
            horizon=2_000.0,
            replications=3,
            seed=4,
        )
        assert result.value("on") == pytest.approx(0.5, abs=0.05)

    def test_only_zero_rate_transitions_enabled_raises(self):
        """Regression: this used to divide by a zero total rate."""
        import math

        net = StochasticPetriNet("stuck")
        net.add_place("ON", 1)
        net.add_place("OFF", 0)
        net.add_timed_transition("NEVER", delay=math.inf)
        net.add_input_arc("ON", "NEVER")
        net.add_output_arc("NEVER", "OFF")
        with pytest.raises(SimulationError, match="zero rate"):
            simulate(
                net,
                [ProbabilityMeasure("on", "#ON = 1")],
                horizon=10.0,
                replications=1,
                seed=1,
            )

    def test_duplicate_input_arcs_cannot_go_negative_silently(self):
        """Regression: the kernel-based event loop must keep the scalar
        fire() guard against duplicate-input-arc nets (enabled by the max
        multiplicity, consuming the sum)."""
        from repro.exceptions import ModelError

        net = StochasticPetriNet("dup")
        net.add_place("P", 1)
        net.add_place("Q", 0)
        net.add_timed_transition("T", delay=1.0)
        net.add_input_arc("P", "T", multiplicity=1)
        net.add_input_arc("P", "T", multiplicity=1)  # consumes 2, requires 1
        net.add_output_arc("T", "Q")
        with pytest.raises(ModelError, match="negative"):
            simulate(
                net,
                [ProbabilityMeasure("q", "#Q > 0")],
                horizon=100.0,
                replications=1,
                seed=0,
            )

    def test_absorbing_net_spends_remaining_time_in_final_state(self):
        net = StochasticPetriNet("absorbing")
        net.add_place("RUN", 1)
        net.add_place("DEAD", 0)
        net.add_timed_transition("DIE", delay=1.0)
        net.add_input_arc("RUN", "DIE")
        net.add_output_arc("DIE", "DEAD")
        result = simulate(
            net,
            [ProbabilityMeasure("dead", "#DEAD = 1")],
            horizon=1_000.0,
            replications=3,
            warmup_fraction=0.0,
            seed=2,
        )
        assert result.value("dead") > 0.99


class TestArgumentValidation:
    def test_invalid_horizon(self):
        with pytest.raises(SimulationError):
            simulate(simple_component("X"), [AVAILABILITY], horizon=0.0)

    def test_invalid_replications(self):
        with pytest.raises(SimulationError):
            simulate(simple_component("X"), [AVAILABILITY], horizon=10.0, replications=0)

    def test_invalid_warmup(self):
        with pytest.raises(SimulationError):
            simulate(
                simple_component("X"), [AVAILABILITY], horizon=10.0, warmup_fraction=1.0
            )

    def test_invalid_confidence_level(self):
        with pytest.raises(SimulationError):
            simulate(
                simple_component("X"), [AVAILABILITY], horizon=10.0, confidence_level=1.0
            )

    def test_unknown_throughput_transition(self):
        with pytest.raises(SimulationError):
            simulate(
                simple_component("X"),
                [ThroughputMeasure("t", "missing")],
                horizon=10.0,
            )

    def test_custom_initial_marking(self):
        net = simple_component("X", mttf=100.0, mttr=10.0)
        result = simulate(
            net,
            [AVAILABILITY],
            horizon=2_000.0,
            replications=2,
            seed=9,
            initial_marking={"X_ON": 0, "X_OFF": 1},
        )
        assert 0.0 < result.value("availability") < 1.0
