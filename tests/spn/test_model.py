"""Tests for the SPN model definition API."""

import pytest

from repro.exceptions import ModelError
from repro.spn import ArcKind, ServerSemantics, StochasticPetriNet

from tests.spn.nets import simple_component


class TestPlaces:
    def test_add_and_query_place(self):
        net = StochasticPetriNet("n")
        net.add_place("P", initial_tokens=2)
        assert net.place("P").initial_tokens == 2
        assert net.has_place("P")
        assert net.place_names == ["P"]

    def test_re_adding_same_place_is_idempotent(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 1)
        net.add_place("P", 1)
        assert len(net.places) == 1

    def test_re_adding_with_different_marking_fails(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 1)
        with pytest.raises(ModelError):
            net.add_place("P", 2)

    def test_negative_initial_tokens_rejected(self):
        net = StochasticPetriNet("n")
        with pytest.raises(ModelError):
            net.add_place("P", -1)

    def test_set_initial_tokens(self):
        net = StochasticPetriNet("n")
        net.add_place("P", 0)
        net.set_initial_tokens("P", 5)
        assert net.place("P").initial_tokens == 5

    def test_unknown_place_lookup_fails(self):
        with pytest.raises(ModelError):
            StochasticPetriNet("n").place("missing")

    def test_initial_marking_mapping(self):
        net = simple_component("X", 10.0, 1.0)
        assert net.initial_marking() == {"X_ON": 1, "X_OFF": 0}


class TestTransitions:
    def test_timed_transition_rate(self):
        net = StochasticPetriNet("n")
        transition = net.add_timed_transition("T", delay=4.0)
        assert transition.rate == pytest.approx(0.25)
        assert not transition.immediate

    def test_timed_transition_requires_positive_delay(self):
        net = StochasticPetriNet("n")
        with pytest.raises(ModelError):
            net.add_timed_transition("T", delay=0.0)

    def test_immediate_transition_attributes(self):
        net = StochasticPetriNet("n")
        transition = net.add_immediate_transition("I", weight=2.0, priority=3)
        assert transition.immediate
        assert transition.weight == 2.0
        assert transition.priority == 3

    def test_immediate_rate_is_undefined(self):
        net = StochasticPetriNet("n")
        transition = net.add_immediate_transition("I")
        with pytest.raises(ModelError):
            _ = transition.rate

    def test_immediate_rejects_non_positive_weight(self):
        net = StochasticPetriNet("n")
        with pytest.raises(ModelError):
            net.add_immediate_transition("I", weight=0.0)

    def test_duplicate_transition_name_rejected(self):
        net = StochasticPetriNet("n")
        net.add_timed_transition("T", delay=1.0)
        with pytest.raises(ModelError):
            net.add_immediate_transition("T")

    def test_transition_name_clash_with_place_rejected(self):
        net = StochasticPetriNet("n")
        net.add_place("X")
        with pytest.raises(ModelError):
            net.add_timed_transition("X", delay=1.0)

    def test_semantics_accepts_paper_shorthand(self):
        net = StochasticPetriNet("n")
        transition = net.add_timed_transition("T", delay=1.0, semantics="is")
        assert transition.semantics is ServerSemantics.INFINITE_SERVER

    def test_unknown_semantics_rejected(self):
        net = StochasticPetriNet("n")
        with pytest.raises(ModelError):
            net.add_timed_transition("T", delay=1.0, semantics="many")

    def test_guard_parsed_from_string(self):
        net = StochasticPetriNet("n")
        net.add_place("P")
        transition = net.add_immediate_transition("I", guard="#P > 0")
        assert transition.guard is not None
        assert transition.guard.places() == frozenset({"P"})


class TestArcs:
    def test_arc_kinds_recorded(self):
        net = simple_component("X")
        kinds = {(arc.kind, arc.place, arc.transition) for arc in net.arcs}
        assert (ArcKind.INPUT, "X_ON", "X_Failure") in kinds
        assert (ArcKind.OUTPUT, "X_OFF", "X_Failure") in kinds

    def test_arcs_of_transition(self):
        net = simple_component("X")
        arcs = net.arcs_of("X_Failure")
        assert len(arcs) == 2

    def test_arc_to_unknown_place_rejected(self):
        net = StochasticPetriNet("n")
        net.add_timed_transition("T", delay=1.0)
        with pytest.raises(ModelError):
            net.add_input_arc("missing", "T")

    def test_arc_to_unknown_transition_rejected(self):
        net = StochasticPetriNet("n")
        net.add_place("P")
        with pytest.raises(ModelError):
            net.add_output_arc("missing", "P")

    def test_zero_multiplicity_rejected(self):
        net = StochasticPetriNet("n")
        net.add_place("P")
        net.add_timed_transition("T", delay=1.0)
        with pytest.raises(ModelError):
            net.add_input_arc("P", "T", multiplicity=0)

    def test_inhibitor_arc(self):
        net = StochasticPetriNet("n")
        net.add_place("P")
        net.add_timed_transition("T", delay=1.0)
        arc = net.add_inhibitor_arc("P", "T", multiplicity=2)
        assert arc.kind is ArcKind.INHIBITOR
        assert arc.multiplicity == 2


class TestNet:
    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            StochasticPetriNet("")

    def test_repr_mentions_counts(self):
        net = simple_component("X")
        text = repr(net)
        assert "places=2" in text
        assert "transitions=2" in text
