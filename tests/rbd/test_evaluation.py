"""Tests for RBD evaluation: MTTF, equivalent MTTR and summary results."""

import pytest

from repro.metrics import availability_from_mttf_mttr
from repro.rbd import (
    BasicBlock,
    Parallel,
    Series,
    equivalent_failure_rate,
    equivalent_mttr,
    evaluate,
    mean_time_to_failure,
    series,
)


class TestSeriesEquivalents:
    def test_equivalent_failure_rate_is_sum_of_rates(self):
        structure = Series("S", [BasicBlock("A", 100.0, 1.0), BasicBlock("B", 400.0, 2.0)])
        assert equivalent_failure_rate(structure) == pytest.approx(1 / 100.0 + 1 / 400.0)

    def test_series_mttf_closed_form(self):
        structure = Series("S", [BasicBlock("A", 100.0, 1.0), BasicBlock("B", 400.0, 2.0)])
        assert mean_time_to_failure(structure) == pytest.approx(1.0 / (0.01 + 0.0025))

    def test_equivalent_mttr_reproduces_availability(self):
        structure = Series("S", [BasicBlock("A", 100.0, 1.0), BasicBlock("B", 400.0, 2.0)])
        mttf = mean_time_to_failure(structure)
        mttr = equivalent_mttr(structure)
        assert availability_from_mttf_mttr(mttf, mttr) == pytest.approx(
            structure.availability()
        )

    def test_paper_os_pm_equivalents(self):
        # Hierarchical step of Section IV-D with Table VI values.
        os_pm = series("OS_PM", [("OS", 4000.0, 1.0), ("PM", 1000.0, 12.0)])
        result = evaluate(os_pm)
        assert result.mttf == pytest.approx(1.0 / (1 / 4000.0 + 1 / 1000.0))
        assert availability_from_mttf_mttr(result.mttf, result.mttr) == pytest.approx(
            result.availability
        )
        # The PM hardware (12 h repair) dominates the combined repair time.
        assert 2.0 < result.mttr < 12.0

    def test_paper_nas_net_equivalents(self):
        nas_net = series(
            "NAS_NET",
            [("Switch", 430000.0, 4.0), ("Router", 14077473.0, 4.0), ("NAS", 20000000.0, 2.0)],
        )
        result = evaluate(nas_net)
        assert result.availability > 0.99998
        assert result.mttf == pytest.approx(
            1.0 / (1 / 430000.0 + 1 / 14077473.0 + 1 / 20000000.0)
        )


class TestNonSeriesStructures:
    def test_parallel_mttf_of_identical_exponentials(self):
        # For two identical units without repair MTTF_parallel = 1.5 / lambda.
        structure = Parallel("P", [BasicBlock("A", 100.0, 1.0), BasicBlock("B", 100.0, 1.0)])
        assert mean_time_to_failure(structure) == pytest.approx(150.0, rel=1e-3)

    def test_parallel_equivalent_mttr_consistent(self):
        structure = Parallel("P", [BasicBlock("A", 100.0, 5.0), BasicBlock("B", 100.0, 5.0)])
        mttf = mean_time_to_failure(structure)
        mttr = equivalent_mttr(structure)
        assert availability_from_mttf_mttr(mttf, mttr) == pytest.approx(
            structure.availability()
        )

    def test_basic_block_passthrough(self):
        leaf = BasicBlock("A", 321.0, 7.0)
        assert mean_time_to_failure(leaf) == 321.0
        assert equivalent_mttr(leaf) == 7.0

    def test_perfect_block_has_zero_equivalent_mttr(self):
        leaf = BasicBlock("A", 321.0, 0.0)
        assert equivalent_mttr(leaf) == 0.0


class TestRbdResult:
    def test_result_fields_and_nines(self):
        result = evaluate(series("S", [("A", 99.0, 1.0)]))
        assert result.name == "S"
        assert result.availability == pytest.approx(0.99)
        assert result.nines == pytest.approx(2.0)
        assert result.failure_rate == pytest.approx(1.0 / 99.0)


class TestMttfIntegrationRobustness:
    """Regression tests for the truncated-horizon MTTF bug.

    The old implementation integrated R(t) in one adaptive pass over
    [0, 200 x max leaf MTTF]; with component lifetimes separated by many
    orders of magnitude the quadrature sampled straight past the
    concentrated mass and silently lost (or zeroed) the integral.  The fix
    places one breakpoint per decade between the fastest failure scale and
    the horizon and certifies the truncated tail against the coherent-
    structure bound R(t) <= sum_i exp(-lambda_i t).
    """

    def test_redundant_parallel_inside_series_with_separated_scales(self):
        # Closed form: integral of (1 - (1 - e^{-a t})^4) e^{-c t} dt
        #            = 4/(c+a) - 6/(c+2a) + 4/(c+3a) - 1/(c+4a).
        a, c = 1e-6, 1000.0
        deep = Parallel("deep", [BasicBlock(f"p{i}", 1.0 / a, 1.0) for i in range(4)])
        structure = Series("mixed", [deep, BasicBlock("weak", 1.0 / c, 1e-4)])
        exact = 4 / (c + a) - 6 / (c + 2 * a) + 4 / (c + 3 * a) - 1 / (c + 4 * a)
        assert mean_time_to_failure(structure) == pytest.approx(exact, rel=1e-8)

    def test_highly_redundant_parallel_matches_harmonic_closed_form(self):
        n, leaf_mttf = 64, 100.0
        block = Parallel("big", [BasicBlock(f"u{i}", leaf_mttf, 1.0) for i in range(n)])
        exact = leaf_mttf * sum(1.0 / k for k in range(1, n + 1))
        assert mean_time_to_failure(block) == pytest.approx(exact, rel=1e-10)

    def test_parallel_with_twelve_orders_of_magnitude_scale_separation(self):
        # Inclusion-exclusion for two independent exponentials.
        fast, slow = 1.0, 1e12
        block = Parallel("sep", [BasicBlock("fast", fast, 0.1), BasicBlock("slow", slow, 0.1)])
        exact = fast + slow - 1.0 / (1.0 / fast + 1.0 / slow)
        assert mean_time_to_failure(block) == pytest.approx(exact, rel=1e-10)

    def test_k_out_of_n_closed_form_preserved(self):
        from repro.rbd import KOutOfN

        leaf_mttf = 1000.0
        block = KOutOfN(
            "koon", 2, [BasicBlock(f"m{i}", leaf_mttf, 1.0) for i in range(5)]
        )
        exact = leaf_mttf * sum(1.0 / i for i in range(2, 6))
        assert mean_time_to_failure(block) == pytest.approx(exact, rel=1e-8)

    def test_explicit_upper_limit_factor_still_truncates(self):
        block = Parallel("pair", [BasicBlock("a", 100.0, 1.0), BasicBlock("b", 100.0, 1.0)])
        truncated = mean_time_to_failure(block, upper_limit_factor=0.5)
        assert truncated < mean_time_to_failure(block)
