"""Property-based tests for RBD invariants (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.rbd import BasicBlock, KOutOfN, Parallel, Series

mttf_strategy = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
mttr_strategy = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


def _blocks(values):
    return [
        BasicBlock(f"B{i}", mttf, mttr) for i, (mttf, mttr) in enumerate(values)
    ]


component_lists = st.lists(st.tuples(mttf_strategy, mttr_strategy), min_size=1, max_size=5)


@given(values=component_lists)
@settings(max_examples=100, deadline=None)
def test_series_availability_not_above_weakest_component(values):
    blocks = _blocks(values)
    structure = Series("S", blocks)
    weakest = min(block.availability() for block in blocks)
    assert structure.availability() <= weakest + 1e-12
    assert 0.0 <= structure.availability() <= 1.0


@given(values=component_lists)
@settings(max_examples=100, deadline=None)
def test_parallel_availability_not_below_strongest_component(values):
    blocks = _blocks(values)
    structure = Parallel("P", blocks)
    strongest = max(block.availability() for block in blocks)
    assert structure.availability() >= strongest - 1e-12
    assert 0.0 <= structure.availability() <= 1.0


@given(values=component_lists, time=st.floats(min_value=0.0, max_value=1e5))
@settings(max_examples=100, deadline=None)
def test_reliability_bounded_and_ordered(values, time):
    blocks = _blocks(values)
    series_structure = Series("S", blocks)
    parallel_structure = Parallel(
        "P", [BasicBlock(f"C{i}", b.mttf(), b.mttr()) for i, b in enumerate(blocks)]
    )
    r_series = series_structure.reliability(time)
    r_parallel = parallel_structure.reliability(time)
    assert 0.0 <= r_series <= r_parallel + 1e-12
    assert r_parallel <= 1.0


@given(
    values=st.lists(st.tuples(mttf_strategy, mttr_strategy), min_size=2, max_size=5),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_k_out_of_n_monotone_in_k(values, data):
    blocks = _blocks(values)
    n = len(blocks)
    k = data.draw(st.integers(min_value=1, max_value=n - 1))
    easier = KOutOfN("K1", k, _blocks(values))
    harder = KOutOfN("K2", k + 1, _blocks(values))
    assert harder.availability() <= easier.availability() + 1e-12


@given(values=component_lists)
@settings(max_examples=50, deadline=None)
def test_availability_given_overrides_bounds_structure(values):
    """Pinning any single component to perfect/failed brackets the nominal value."""
    blocks = _blocks(values)
    structure = Series("S", blocks)
    nominal = structure.availability()
    name = blocks[0].name
    assert structure.availability_given({name: 0.0}) <= nominal + 1e-12
    assert structure.availability_given({name: 1.0}) >= nominal - 1e-12
