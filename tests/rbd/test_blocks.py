"""Tests for RBD block structures."""

import pytest

from repro.exceptions import ModelError
from repro.rbd import BasicBlock, Bridge, KOutOfN, Parallel, Series


def block(name="X", mttf=100.0, mttr=1.0):
    return BasicBlock(name, mttf, mttr)


class TestBasicBlock:
    def test_availability(self):
        assert block(mttf=99.0, mttr=1.0).availability() == pytest.approx(0.99)

    def test_reliability_decreases(self):
        component = block(mttf=100.0)
        assert component.reliability(0.0) == 1.0
        assert component.reliability(10.0) > component.reliability(100.0)

    def test_rates(self):
        component = block(mttf=200.0, mttr=4.0)
        assert component.failure_rate == pytest.approx(1.0 / 200.0)
        assert component.repair_rate == pytest.approx(0.25)

    def test_mttf_mttr_accessors(self):
        component = block(mttf=123.0, mttr=4.5)
        assert component.mttf() == 123.0
        assert component.mttr() == 4.5

    def test_override_in_availability_given(self):
        component = block()
        assert component.availability_given({"X": 0.0}) == 0.0
        assert component.availability_given({"X": 1.0}) == 1.0

    def test_invalid_override_rejected(self):
        with pytest.raises(ModelError):
            block().availability_given({"X": 2.0})

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            BasicBlock("", 10.0, 1.0)
        with pytest.raises(ModelError):
            BasicBlock("X", 0.0, 1.0)
        with pytest.raises(ModelError):
            BasicBlock("X", 10.0, -1.0)


class TestSeries:
    def test_availability_is_product(self):
        structure = Series("S", [block("A", 99.0, 1.0), block("B", 49.0, 1.0)])
        assert structure.availability() == pytest.approx(0.99 * 0.98)

    def test_paper_os_pm_series(self):
        # Figure 5 / Table VI: OS (4000, 1) in series with PM (1000, 12).
        os_pm = Series("OS_PM", [block("OS", 4000.0, 1.0), block("PM", 1000.0, 12.0)])
        expected = (4000.0 / 4001.0) * (1000.0 / 1012.0)
        assert os_pm.availability() == pytest.approx(expected)

    def test_reliability_is_product(self):
        structure = Series("S", [block("A", 100.0), block("B", 200.0)])
        assert structure.reliability(50.0) == pytest.approx(
            block("A", 100.0).reliability(50.0) * block("B", 200.0).reliability(50.0)
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            Series("S", [block("A"), block("A")])

    def test_empty_series_rejected(self):
        with pytest.raises(ModelError):
            Series("S", [])

    def test_basic_block_names(self):
        structure = Series("S", [block("A"), block("B")])
        assert structure.basic_block_names() == ["A", "B"]


class TestParallel:
    def test_availability(self):
        structure = Parallel("P", [block("A", 9.0, 1.0), block("B", 9.0, 1.0)])
        assert structure.availability() == pytest.approx(1.0 - 0.1 * 0.1)

    def test_parallel_beats_single(self):
        single = block("A", 100.0, 10.0)
        redundant = Parallel("P", [block("A1", 100.0, 10.0), block("A2", 100.0, 10.0)])
        assert redundant.availability() > single.availability()

    def test_reliability(self):
        structure = Parallel("P", [block("A", 100.0), block("B", 100.0)])
        r = block("A", 100.0).reliability(30.0)
        assert structure.reliability(30.0) == pytest.approx(1.0 - (1.0 - r) ** 2)


class TestKOutOfN:
    def test_one_out_of_n_equals_parallel(self):
        children = [block("A", 50.0, 5.0), block("B", 80.0, 2.0), block("C", 10.0, 1.0)]
        koon = KOutOfN("K", 1, children)
        parallel = Parallel("P", [block("A", 50.0, 5.0), block("B", 80.0, 2.0), block("C", 10.0, 1.0)])
        assert koon.availability() == pytest.approx(parallel.availability())

    def test_n_out_of_n_equals_series(self):
        koon = KOutOfN("K", 2, [block("A", 99.0, 1.0), block("B", 49.0, 1.0)])
        assert koon.availability() == pytest.approx(0.99 * 0.98)

    def test_two_out_of_three_identical(self):
        p = 0.9
        koon = KOutOfN("K", 2, [block(f"B{i}", 9.0, 1.0) for i in range(3)])
        expected = 3 * p * p * (1 - p) + p**3
        assert koon.availability() == pytest.approx(expected)

    def test_invalid_k_rejected(self):
        with pytest.raises(ModelError):
            KOutOfN("K", 0, [block("A")])
        with pytest.raises(ModelError):
            KOutOfN("K", 3, [block("A"), block("B")])

    def test_reliability_between_series_and_parallel(self):
        children = lambda: [block(f"B{i}", 100.0, 1.0) for i in range(3)]
        series = Series("S", children())
        parallel = Parallel("P", children())
        koon = KOutOfN("K", 2, children())
        t = 40.0
        assert series.reliability(t) <= koon.reliability(t) <= parallel.reliability(t)


class TestBridge:
    def test_requires_five_children(self):
        with pytest.raises(ModelError):
            Bridge("B", [block("A"), block("B1")])

    def test_perfect_bridge_equals_parallel_of_series(self):
        # With a perfect bridging element the structure is (A∥C) in series with (B∥D).
        children = [block("A", 9.0, 1.0), block("B", 9.0, 1.0), block("C", 9.0, 1.0), block("D", 9.0, 1.0), block("E", 9.0, 1.0)]
        bridge = Bridge("BR", children)
        value = bridge.availability_given({"E": 1.0})
        p = 0.9
        expected = (1 - (1 - p) ** 2) ** 2
        assert value == pytest.approx(expected)

    def test_failed_bridge_equals_parallel_of_series_paths(self):
        children = [block("A", 9.0, 1.0), block("B", 9.0, 1.0), block("C", 9.0, 1.0), block("D", 9.0, 1.0), block("E", 9.0, 1.0)]
        bridge = Bridge("BR", children)
        value = bridge.availability_given({"E": 0.0})
        p = 0.9
        expected = 1 - (1 - p * p) ** 2
        assert value == pytest.approx(expected)

    def test_bridge_between_the_two_extremes(self):
        children = [block(name, 9.0, 1.0) for name in "ABCDE"]
        bridge = Bridge("BR", children)
        low = bridge.availability_given({"E": 0.0})
        high = bridge.availability_given({"E": 1.0})
        assert low <= bridge.availability() <= high


class TestNestedStructures:
    def test_series_of_parallels(self):
        structure = Series(
            "system",
            [
                Parallel("stage1", [block("A1", 9.0, 1.0), block("A2", 9.0, 1.0)]),
                Parallel("stage2", [block("B1", 9.0, 1.0), block("B2", 9.0, 1.0)]),
            ],
        )
        stage = 1.0 - 0.1 * 0.1
        assert structure.availability() == pytest.approx(stage * stage)
        assert len(structure.basic_blocks()) == 4
