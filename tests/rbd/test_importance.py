"""Tests for RBD importance analysis."""

import pytest

from repro.rbd import (
    BasicBlock,
    Parallel,
    Series,
    birnbaum_importance,
    importance_analysis,
    series,
)


class TestBirnbaumImportance:
    def test_series_of_two_components(self):
        structure = Series("S", [BasicBlock("A", 99.0, 1.0), BasicBlock("B", 49.0, 1.0)])
        importance = birnbaum_importance(structure)
        # In a series system the Birnbaum importance of a component equals the
        # availability of the rest of the system.
        assert importance["A"] == pytest.approx(0.98)
        assert importance["B"] == pytest.approx(0.99)

    def test_weakest_series_component_is_most_critical(self):
        # For the paper's OS_PM block the PM hardware (A=0.988) is less
        # available than the OS (A=0.99975), so improving the PM matters more.
        os_pm = series("OS_PM", [("OS", 4000.0, 1.0), ("PM", 1000.0, 12.0)])
        results = importance_analysis(os_pm)
        assert results[0].component == "PM"

    def test_parallel_importance_is_small_when_redundant(self):
        redundant = Parallel("P", [BasicBlock("A", 99.0, 1.0), BasicBlock("B", 99.0, 1.0)])
        importance = birnbaum_importance(redundant)
        assert importance["A"] == pytest.approx(0.01)

    def test_results_sorted_by_decreasing_birnbaum(self):
        structure = Series(
            "S",
            [BasicBlock("GOOD", 10000.0, 1.0), BasicBlock("BAD", 10.0, 5.0)],
        )
        results = importance_analysis(structure)
        values = [result.birnbaum for result in results]
        assert values == sorted(values, reverse=True)

    def test_availability_improvement_non_negative(self):
        structure = Series("S", [BasicBlock("A", 50.0, 5.0), BasicBlock("B", 500.0, 5.0)])
        for result in importance_analysis(structure):
            assert result.availability_improvement >= 0.0

    def test_criticality_weighting(self):
        structure = Series("S", [BasicBlock("A", 50.0, 5.0), BasicBlock("B", 500.0, 5.0)])
        results = {r.component: r for r in importance_analysis(structure)}
        # Criticality importance of all components in a series system sums to ~1
        # when unavailabilities are small but here just check bounds.
        for result in results.values():
            assert 0.0 <= result.criticality <= 1.0
