"""Property tests: the chunked backend is exact on random GSPNs.

Two invariants, checked on randomly composed nets (independent cycles,
machine-repair blocks and immediate-routing blocks — bounded, irreducible
product chains with both tangible and vanishing markings):

* **bit-identity** — writing the chunked entry and materialising it back
  reproduces the in-RAM generation exactly (same state numbering, same
  edge arrays, same rates), provided both sides use the same exploration
  chunk size (state numbering is discovery-order dependent, and discovery
  order depends on the wave batching);
* **solver agreement** — the stationary vector from the in-RAM direct
  solve, the in-RAM preconditioner-reusing Krylov solve and the
  matrix-free chunked solve agree to < 1e-12, element-wise.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.engine.krylov import KrylovSettings, MatrixFreeSolver, ReusableSolver
from repro.engine.system import ConstrainedSystemTemplate
from repro.markov import solvers
from repro.spn import (
    CompiledNet,
    ServerSemantics,
    StochasticPetriNet,
    generate_tangible_reachability_graph,
)
from repro.spn.ctmc_export import generator_matrix
from repro.statespace import ChunkedGraph, write_chunked_graph

SOLVER_AGREEMENT = 1e-12

positive_delay = st.floats(min_value=0.05, max_value=500.0, allow_nan=False)


def add_cycle(net, name, draw):
    """A ring of 2–3 places with 1–2 circulating tokens."""
    length = draw(st.integers(min_value=2, max_value=3))
    tokens = draw(st.integers(min_value=1, max_value=2))
    for position in range(length):
        net.add_place(f"{name}_P{position}", initial_tokens=tokens if position == 0 else 0)
    for position in range(length):
        transition = f"{name}_T{position}"
        semantics = (
            ServerSemantics.INFINITE_SERVER
            if draw(st.booleans())
            else ServerSemantics.SINGLE_SERVER
        )
        net.add_timed_transition(
            transition, delay=draw(positive_delay), semantics=semantics
        )
        net.add_input_arc(f"{name}_P{position}", transition)
        net.add_output_arc(transition, f"{name}_P{(position + 1) % length}")


def add_repair(net, name, draw):
    """A machine-repair block with 1–3 machines."""
    machines = draw(st.integers(min_value=1, max_value=3))
    net.add_place(f"{name}_UP", initial_tokens=machines)
    net.add_place(f"{name}_DOWN", initial_tokens=0)
    net.add_timed_transition(
        f"{name}_FAIL",
        delay=draw(positive_delay),
        semantics=ServerSemantics.INFINITE_SERVER,
    )
    net.add_timed_transition(f"{name}_FIX", delay=draw(positive_delay))
    net.add_input_arc(f"{name}_UP", f"{name}_FAIL")
    net.add_output_arc(f"{name}_FAIL", f"{name}_DOWN")
    net.add_input_arc(f"{name}_DOWN", f"{name}_FIX")
    net.add_output_arc(f"{name}_FIX", f"{name}_UP")


def add_routing(net, name, draw):
    """A timed arrival raced by two immediate transitions (vanishing states)."""
    net.add_place(f"{name}_SRC", initial_tokens=1)
    net.add_place(f"{name}_CHOICE", initial_tokens=0)
    net.add_place(f"{name}_A", initial_tokens=0)
    net.add_place(f"{name}_B", initial_tokens=0)
    net.add_timed_transition(f"{name}_ARRIVE", delay=draw(positive_delay))
    net.add_immediate_transition(
        f"{name}_GO_A", weight=draw(st.floats(min_value=0.1, max_value=10.0))
    )
    net.add_immediate_transition(
        f"{name}_GO_B", weight=draw(st.floats(min_value=0.1, max_value=10.0))
    )
    net.add_timed_transition(f"{name}_DONE_A", delay=draw(positive_delay))
    net.add_timed_transition(f"{name}_DONE_B", delay=draw(positive_delay))
    net.add_input_arc(f"{name}_SRC", f"{name}_ARRIVE")
    net.add_output_arc(f"{name}_ARRIVE", f"{name}_CHOICE")
    net.add_input_arc(f"{name}_CHOICE", f"{name}_GO_A")
    net.add_output_arc(f"{name}_GO_A", f"{name}_A")
    net.add_input_arc(f"{name}_CHOICE", f"{name}_GO_B")
    net.add_output_arc(f"{name}_GO_B", f"{name}_B")
    net.add_input_arc(f"{name}_A", f"{name}_DONE_A")
    net.add_output_arc(f"{name}_DONE_A", f"{name}_SRC")
    net.add_input_arc(f"{name}_B", f"{name}_DONE_B")
    net.add_output_arc(f"{name}_DONE_B", f"{name}_SRC")


BLOCKS = {"cycle": add_cycle, "repair": add_repair, "routing": add_routing}


@st.composite
def random_gspn(draw):
    net = StochasticPetriNet("RANDOM_GSPN")
    count = draw(st.integers(min_value=1, max_value=3))
    for index in range(count):
        kind = draw(st.sampled_from(sorted(BLOCKS)))
        BLOCKS[kind](net, f"C{index}", draw)
    return net


@given(net=random_gspn())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_chunked_entry_is_bit_identical_to_in_ram(net, tmp_path_factory):
    directory = tmp_path_factory.mktemp("chunks") / "graph"
    reference = generate_tangible_reachability_graph(net, max_states=5_000)
    # Same (default) chunk size on both sides: state numbering follows
    # discovery order, and discovery order follows the wave batching.
    write_chunked_graph(net, directory, max_states=5_000)
    materialized = ChunkedGraph.open(directory, CompiledNet(net)).materialize()
    assert materialized.number_of_states == reference.number_of_states
    np.testing.assert_array_equal(materialized.edge_sources, reference.edge_sources)
    np.testing.assert_array_equal(materialized.edge_targets, reference.edge_targets)
    np.testing.assert_array_equal(materialized.edge_rates, reference.edge_rates)
    np.testing.assert_array_equal(materialized.rate_vector, reference.rate_vector)
    assert list(materialized.markings) == list(reference.markings)


@given(net=random_gspn())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_all_three_solve_paths_agree(net, tmp_path_factory):
    directory = tmp_path_factory.mktemp("chunks") / "graph"
    graph = generate_tangible_reachability_graph(net, max_states=5_000)
    write_chunked_graph(net, directory, max_states=5_000)
    chunked = ChunkedGraph.open(directory, CompiledNet(net))

    pi_direct = solvers.steady_state(generator_matrix(graph), method="direct")
    if graph.number_of_states > 1:
        template = ConstrainedSystemTemplate(
            graph.edge_sources, graph.edge_targets, graph.number_of_states
        )
        pi_krylov = ReusableSolver(template, KrylovSettings()).solve(
            graph.edge_rates, lambda: generator_matrix(graph)
        )
    else:
        pi_krylov = np.array([1.0])
    pi_chunked = MatrixFreeSolver(chunked).solve()

    assert np.abs(pi_direct - pi_krylov).max() < SOLVER_AGREEMENT
    assert np.abs(pi_direct - pi_chunked).max() < SOLVER_AGREEMENT
    assert np.abs(pi_krylov - pi_chunked).max() < SOLVER_AGREEMENT
    assert pi_chunked.sum() == np.float64(1.0) or abs(pi_chunked.sum() - 1.0) < 1e-12
