"""Backend contract, chunked-graph round trips, and the symbolic sizer."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError, StateSpaceLimitError
from repro.spn import CompiledNet, generate_tangible_reachability_graph
from repro.statespace import (
    ChunkedGraph,
    CorruptChunkError,
    StateSpaceBackend,
    is_chunked,
    is_state_space,
    representation_of,
    symbolic_available,
    unavailable_reason,
    write_chunked_graph,
)
from repro.statespace.symbolic import SymbolicUnavailable, count_reachable_markings

from tests.spn.nets import machine_repair, mm1k_queue, simple_component


def chunked_of(net, directory, max_states=10_000, chunk_size=None):
    kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
    write_chunked_graph(net, directory, max_states=max_states, **kwargs)
    return ChunkedGraph.open(directory, CompiledNet(net))


class TestBackendContract:
    def test_in_ram_graph_satisfies_protocol(self):
        graph = generate_tangible_reachability_graph(machine_repair(3))
        assert isinstance(graph, StateSpaceBackend)
        assert representation_of(graph) == "in_ram"
        assert is_state_space(graph) and not is_chunked(graph)

    def test_chunked_graph_satisfies_protocol(self, tmp_path):
        graph = chunked_of(machine_repair(3), tmp_path / "g")
        assert isinstance(graph, StateSpaceBackend)
        assert representation_of(graph) == "chunked"
        assert is_state_space(graph) and is_chunked(graph)

    def test_non_graph_values_are_rejected(self):
        assert not is_state_space(object())
        assert representation_of(object()) == "in_ram"


class TestChunkedGraph:
    def test_materialize_is_bit_identical_to_in_ram(self, tmp_path):
        net = mm1k_queue(capacity=5)
        reference = generate_tangible_reachability_graph(net)
        chunked = chunked_of(net, tmp_path / "g")
        materialized = chunked.materialize()
        assert materialized.number_of_states == reference.number_of_states
        np.testing.assert_array_equal(
            materialized.edge_sources, reference.edge_sources
        )
        np.testing.assert_array_equal(
            materialized.edge_targets, reference.edge_targets
        )
        np.testing.assert_array_equal(materialized.edge_rates, reference.edge_rates)
        assert list(materialized.markings) == list(reference.markings)

    def test_exit_rates_match_in_ram(self, tmp_path):
        net = machine_repair(4)
        reference = generate_tangible_reachability_graph(net)
        chunked = chunked_of(net, tmp_path / "g")
        exit_reference = np.zeros(reference.number_of_states)
        np.add.at(exit_reference, reference.edge_sources, reference.edge_rates)
        np.testing.assert_allclose(
            chunked.exit_rates(chunked.rate_vector), exit_reference, rtol=0, atol=0
        )

    def test_throughput_degree_column_matches_coefficients(self, tmp_path):
        net = mm1k_queue(capacity=4)
        reference = generate_tangible_reachability_graph(net)
        chunked = chunked_of(net, tmp_path / "g")
        for name, index in reference.transition_index.items():
            row = reference.state_coefficient_matrix.getrow(index)
            expected = np.zeros(reference.number_of_states)
            expected[row.indices] = row.data
            np.testing.assert_array_equal(
                chunked.throughput_degree_column(index), expected
            )

    def test_with_rate_vector_rerates_without_touching_disk(self, tmp_path):
        chunked = chunked_of(machine_repair(3), tmp_path / "g")
        rerated = chunked.with_rate_vector(chunked.rate_vector * 2.0)
        np.testing.assert_allclose(
            rerated.exit_rates(rerated.rate_vector),
            2.0 * chunked.exit_rates(chunked.rate_vector),
        )

    def test_verify_detects_corrupted_chunk(self, tmp_path):
        directory = tmp_path / "g"
        chunked = chunked_of(machine_repair(3), directory)
        chunked.verify()
        victim = sorted(directory.glob("chunk-*.npy"))[0]
        victim.write_bytes(b"\x00" * victim.stat().st_size)
        with pytest.raises(CorruptChunkError):
            ChunkedGraph.open(directory, CompiledNet(machine_repair(3))).verify()

    def test_max_states_limit_is_enforced(self, tmp_path):
        with pytest.raises(StateSpaceLimitError):
            write_chunked_graph(
                machine_repair(6), tmp_path / "g", max_states=3
            )


class TestSymbolicSizing:
    def test_unavailable_without_dd_is_honest(self):
        if symbolic_available():  # pragma: no cover - dd not installed here
            sizing = count_reachable_markings(simple_component())
            assert sizing.reachable_markings == 2
            return
        reason = unavailable_reason()
        assert reason is not None and "dd" in reason
        with pytest.raises(SymbolicUnavailable) as outcome:
            count_reachable_markings(simple_component())
        assert "dd" in str(outcome.value)
        assert isinstance(outcome.value, AnalysisError)
