"""Property-based tests for the expression language (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.expressions import compile_expression, evaluate, parse
from repro.expressions.ast import (
    ArithmeticOp,
    BooleanOp,
    Comparison,
    Expression,
    Not,
    NumberLiteral,
    TokenCount,
)

PLACES = ["P0", "P1", "P2", "P3"]


def _leaf_strategy():
    return st.one_of(
        st.integers(min_value=0, max_value=20).map(lambda v: NumberLiteral(float(v))),
        st.sampled_from(PLACES).map(TokenCount),
    )


# Arithmetic expressions only ever contain arithmetic children (the grammar
# does not allow boolean operands inside +, -, *).
arithmetic_strategy = st.recursive(
    _leaf_strategy(),
    lambda children: st.tuples(st.sampled_from("+-*"), children, children).map(
        lambda t: ArithmeticOp(t[0], t[1], t[2])
    ),
    max_leaves=8,
)

comparison_strategy = st.tuples(
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    arithmetic_strategy,
    arithmetic_strategy,
).map(lambda t: Comparison(t[0], t[1], t[2]))

boolean_strategy = st.recursive(
    comparison_strategy,
    lambda children: st.one_of(
        st.tuples(st.sampled_from(["AND", "OR"]), children, children).map(
            lambda t: BooleanOp(t[0], t[1], t[2])
        ),
        children.map(Not),
    ),
    max_leaves=6,
)

expression_strategy = st.one_of(arithmetic_strategy, boolean_strategy)
marking_strategy = st.tuples(*[st.integers(min_value=0, max_value=9) for _ in PLACES])


@given(expression=expression_strategy)
@settings(max_examples=150, deadline=None)
def test_round_trip_through_source(expression: Expression):
    """Rendering to source and re-parsing yields an equivalent AST."""
    assert parse(expression.to_source()) == expression


@given(expression=expression_strategy, marking=marking_strategy)
@settings(max_examples=150, deadline=None)
def test_compiled_closure_agrees_with_interpreter(expression, marking):
    """compile_expression and evaluate must agree on every marking."""
    index = {name: i for i, name in enumerate(PLACES)}
    as_dict = dict(zip(PLACES, marking))
    compiled = compile_expression(expression, index)
    assert compiled(marking) == evaluate(expression, as_dict)


@given(expression=expression_strategy, marking=marking_strategy)
@settings(max_examples=100, deadline=None)
def test_places_reported_are_sufficient_to_evaluate(expression, marking):
    """Evaluation only needs the places reported by Expression.places()."""
    full = dict(zip(PLACES, marking))
    restricted = {name: full[name] for name in expression.places()}
    assert evaluate(expression, restricted) == evaluate(expression, full)
