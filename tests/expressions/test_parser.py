"""Tests for the expression parser."""

import pytest

from repro.exceptions import ExpressionError
from repro.expressions import (
    ArithmeticOp,
    BooleanLiteral,
    BooleanOp,
    Comparison,
    Identifier,
    Negate,
    Not,
    NumberLiteral,
    TokenCount,
    parse,
)


class TestParseAtoms:
    def test_number(self):
        node = parse("42")
        assert isinstance(node, NumberLiteral)
        assert node.value == 42

    def test_place(self):
        node = parse("#VM_UP1")
        assert isinstance(node, TokenCount)
        assert node.place == "VM_UP1"

    def test_identifier(self):
        node = parse("k")
        assert isinstance(node, Identifier)
        assert node.name == "k"

    def test_boolean_literals(self):
        assert parse("TRUE") == BooleanLiteral(True)
        assert parse("FALSE") == BooleanLiteral(False)

    def test_unary_minus(self):
        node = parse("-3")
        assert isinstance(node, Negate)


class TestPrecedence:
    def test_multiplication_binds_tighter_than_addition(self):
        node = parse("1 + 2 * 3")
        assert isinstance(node, ArithmeticOp)
        assert node.operator == "+"
        assert isinstance(node.right, ArithmeticOp)
        assert node.right.operator == "*"

    def test_and_binds_tighter_than_or(self):
        node = parse("#A=1 OR #B=1 AND #C=1")
        assert isinstance(node, BooleanOp)
        assert node.operator == "OR"
        assert isinstance(node.right, BooleanOp)
        assert node.right.operator == "AND"

    def test_comparison_of_sums(self):
        node = parse("#A + #B >= 2")
        assert isinstance(node, Comparison)
        assert node.operator == ">="
        assert isinstance(node.left, ArithmeticOp)

    def test_not_binds_to_following_term(self):
        node = parse("NOT #A=0 AND #B=0")
        assert isinstance(node, BooleanOp)
        assert node.operator == "AND"
        assert isinstance(node.left, Not)

    def test_parentheses_override(self):
        node = parse("NOT (#A=0 AND #B=0)")
        assert isinstance(node, Not)
        assert isinstance(node.operand, BooleanOp)


class TestPaperGuards:
    def test_vm_behavior_failure_guard(self):
        node = parse("(#OSPM_UP1=0) OR (#NAS_NET_UP1=0) OR (#DC_UP1=0)")
        assert node.places() == frozenset({"OSPM_UP1", "NAS_NET_UP1", "DC_UP1"})

    def test_transmission_guard_tri12(self):
        source = (
            "((#OSPM_UP1+#OSPM_UP2)=0) AND NOT ((#OSPM_UP3 + #OSPM_UP4)=0 "
            "OR #NAS_NET_UP2=0 OR #DC_UP2=0)"
        )
        node = parse(source)
        assert "OSPM_UP1" in node.places()
        assert "DC_UP2" in node.places()
        assert len(node.places()) == 6

    def test_availability_measure_expression(self):
        node = parse("(#VM_UP1 + #VM_UP2 + #VM_UP3 + #VM_UP4) >= 2")
        assert len(node.places()) == 4


class TestSourceRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "#A + 2 * #B",
            "(#A = 0) OR NOT (#B > 1)",
            "#X_ON > 0",
            "TRUE AND #P <= 3",
            "-#A + 5 / 2 <> 1",
        ],
    )
    def test_reparsing_rendered_source_gives_same_ast(self, source):
        first = parse(source)
        second = parse(first.to_source())
        assert first == second


class TestParseErrors:
    def test_empty_source(self):
        with pytest.raises(ExpressionError):
            parse("   ")

    def test_non_string(self):
        with pytest.raises(ExpressionError):
            parse(42)  # type: ignore[arg-type]

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ExpressionError):
            parse("(#A = 0")

    def test_trailing_tokens(self):
        with pytest.raises(ExpressionError):
            parse("#A = 0 #B")

    def test_missing_operand(self):
        with pytest.raises(ExpressionError):
            parse("#A +")
