"""Tests for the expression lexer."""

import pytest

from repro.exceptions import ExpressionError
from repro.expressions.lexer import tokenize
from repro.expressions.tokens import TokenType


def token_types(source):
    return [token.type for token in tokenize(source)]


class TestTokenize:
    def test_place_reference(self):
        tokens = tokenize("#OSPM_UP1")
        assert tokens[0].type is TokenType.PLACE
        assert tokens[0].value == "OSPM_UP1"
        assert tokens[-1].type is TokenType.END

    def test_integer_and_float(self):
        tokens = tokenize("42 3.14 1e-3")
        assert tokens[0].value == 42
        assert tokens[1].value == pytest.approx(3.14)
        assert tokens[2].value == pytest.approx(1e-3)

    def test_operators(self):
        assert token_types("+ - * / ( )")[:-1] == [
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.LPAREN,
            TokenType.RPAREN,
        ]

    def test_comparisons(self):
        assert token_types("= == <> != < <= > >=")[:-1] == [
            TokenType.EQ,
            TokenType.EQ,
            TokenType.NEQ,
            TokenType.NEQ,
            TokenType.LT,
            TokenType.LE,
            TokenType.GT,
            TokenType.GE,
        ]

    def test_keywords_are_case_insensitive(self):
        assert token_types("AND and Or nOt TRUE false")[:-1] == [
            TokenType.AND,
            TokenType.AND,
            TokenType.OR,
            TokenType.NOT,
            TokenType.TRUE,
            TokenType.FALSE,
        ]

    def test_identifier(self):
        tokens = tokenize("threshold_k")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "threshold_k"

    def test_paper_guard_expression(self):
        source = "(#OSPM_UP1=0) OR (#NAS_NET_UP1=0) OR (#DC_UP1=0)"
        types = token_types(source)
        assert types.count(TokenType.PLACE) == 3
        assert types.count(TokenType.OR) == 2
        assert types.count(TokenType.EQ) == 3

    def test_positions_are_recorded(self):
        tokens = tokenize("  #A + 1")
        assert tokens[0].position == 2
        assert tokens[1].position == 5

    def test_rejects_bad_character(self):
        with pytest.raises(ExpressionError):
            tokenize("#A & #B")

    def test_rejects_hash_without_name(self):
        with pytest.raises(ExpressionError):
            tokenize("# + 1")

    def test_rejects_lone_exclamation(self):
        with pytest.raises(ExpressionError):
            tokenize("#A ! 1")
