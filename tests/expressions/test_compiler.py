"""Tests for expression evaluation and compilation."""

import pytest

from repro.exceptions import ExpressionError
from repro.expressions import compile_expression, evaluate, parse


class TestEvaluate:
    def test_token_count(self):
        assert evaluate("#A", {"A": 3}) == 3.0

    def test_arithmetic(self):
        assert evaluate("#A + 2 * #B", {"A": 1, "B": 4}) == 9.0

    def test_division(self):
        assert evaluate("#A / 4", {"A": 2}) == pytest.approx(0.5)

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            evaluate("1 / #A", {"A": 0})

    def test_comparisons(self):
        marking = {"A": 2, "B": 0}
        assert evaluate("#A = 2", marking) is True
        assert evaluate("#A <> 2", marking) is False
        assert evaluate("#A > 1", marking) is True
        assert evaluate("#B >= 1", marking) is False
        assert evaluate("#B <= 0", marking) is True
        assert evaluate("#B < 0", marking) is False

    def test_boolean_connectives(self):
        marking = {"A": 1, "B": 0}
        assert evaluate("#A = 1 AND #B = 0", marking) is True
        assert evaluate("#A = 0 OR #B = 0", marking) is True
        assert evaluate("NOT (#A = 1)", marking) is False

    def test_boolean_literals(self):
        assert evaluate("TRUE", {}) is True
        assert evaluate("FALSE OR #A > 0", {"A": 1}) is True

    def test_identifier_from_environment(self):
        assert evaluate("#A >= k", {"A": 3}, {"k": 2}) is True

    def test_unknown_place_raises(self):
        with pytest.raises(ExpressionError):
            evaluate("#MISSING", {"A": 1})

    def test_unknown_identifier_raises(self):
        with pytest.raises(ExpressionError):
            evaluate("k + 1", {})

    def test_paper_guard_semantics(self):
        guard = "(#OSPM_UP1=0) OR (#NAS_NET_UP1=0) OR (#DC_UP1=0)"
        all_up = {"OSPM_UP1": 1, "NAS_NET_UP1": 1, "DC_UP1": 1}
        disaster = {"OSPM_UP1": 1, "NAS_NET_UP1": 1, "DC_UP1": 0}
        assert evaluate(guard, all_up) is False
        assert evaluate(guard, disaster) is True


class TestCompileExpression:
    def test_compiled_matches_interpreter(self):
        source = "(#A + #B) * 2 >= 6 AND NOT (#C = 0)"
        index = {"A": 0, "B": 1, "C": 2}
        compiled = compile_expression(source, index)
        for marking in [(1, 2, 1), (3, 0, 0), (0, 0, 5), (2, 1, 1)]:
            as_dict = {"A": marking[0], "B": marking[1], "C": marking[2]}
            assert compiled(marking) == evaluate(source, as_dict)

    def test_compiled_numeric_expression(self):
        compiled = compile_expression("#A * 3 - 1", {"A": 0})
        assert compiled((4,)) == pytest.approx(11.0)

    def test_compiled_identifier_resolved_at_compile_time(self):
        compiled = compile_expression("#A >= k", {"A": 0}, {"k": 2})
        assert compiled((3,)) is True
        assert compiled((1,)) is False

    def test_compile_accepts_ast(self):
        node = parse("#A > 0")
        compiled = compile_expression(node, {"A": 0})
        assert compiled((1,)) is True

    def test_unknown_place_raises_at_compile_time(self):
        with pytest.raises(ExpressionError):
            compile_expression("#MISSING > 0", {"A": 0})

    def test_unknown_identifier_raises_at_compile_time(self):
        with pytest.raises(ExpressionError):
            compile_expression("k > 0", {"A": 0})

    def test_constant_folding_of_literals(self):
        compiled = compile_expression("TRUE", {})
        assert compiled(()) is True

    def test_works_with_numpy_like_sequences(self):
        import numpy as np

        compiled = compile_expression("#A + #B = 3", {"A": 0, "B": 1})
        assert compiled(np.array([1, 2])) is True
