"""Shared test fixtures."""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_trg_cache(tmp_path_factory):
    """Point the persistent reachability cache at a per-session directory.

    Keeps the suite hermetic: tests never read entries produced by earlier
    runs or other tools, and never write into the user's real cache.
    """
    import os

    directory = tmp_path_factory.mktemp("trg-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(directory)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
