"""End-to-end exactness and grid integration of the symmetry machinery.

* lumped vs unlumped availability / expected running VMs agree to < 1e-12
  on N = 2 and N = 3 mixed grids (heterogeneous data centers stay
  unlumped at the DC level);
* grid cases differing only by a permutation of exchangeable DC parameter
  blocks collapse to one structure fingerprint and dedupe to one solve;
* the ``symmetry_reduction`` knobs share one library-wide default;
* group reports carry lumping provenance.
"""

from dataclasses import replace

import pytest

from repro.casestudy.grid import evaluate_grid, scenario_case
from repro.core.scenarios import MultiDataCenterScenario, homogeneous_mesh_scenario
from repro.core.vm_behavior import vm_up_place
from repro.engine.grid import ScenarioGridOrchestrator
from repro.exceptions import ConfigurationError
from repro.network.geo import NEW_YORK, RIO_DE_JANEIRO, TOKYO
from repro.spn.rewards import ExpectedTokensMeasure

from tests.symmetry.conftest import TINY

TOLERANCE = 1e-12


def expected_vms_measure(model):
    total = " + ".join(
        f"#{vm_up_place(machine.index)}"
        for machine in model.spec.physical_machines
    )
    return ExpectedTokensMeasure("running_vms", total)


def mixed_grid_scenarios(datacenters):
    """One homogeneous mesh + one heterogeneous deployment of size N."""
    homogeneous = homogeneous_mesh_scenario(
        datacenters,
        machines_per_datacenter=1,
        capacity_aware_migration=True,
    )
    heterogeneous = MultiDataCenterScenario(
        locations=(RIO_DE_JANEIRO, TOKYO, NEW_YORK)[:datacenters],
        machines_per_datacenter=1,
        capacity_aware_migration=True,
    )
    return [homogeneous, heterogeneous]


class TestLumpedUnlumpedExactness:
    @pytest.mark.parametrize("datacenters", [2, 3])
    def test_mixed_grid_measures_bit_accurate(self, datacenters):
        scenarios = mixed_grid_scenarios(datacenters)
        cases = {}
        for symmetry in (True, False):
            grid_cases = []
            for scenario in scenarios:
                model = scenario.build_model(TINY)
                case = scenario_case(
                    scenario, parameters=TINY, symmetry_reduction=symmetry
                )
                grid_cases.append(
                    replace(
                        case,
                        measures=case.measures + (expected_vms_measure(model),),
                    )
                )
            outcome = ScenarioGridOrchestrator(cache=None).run(grid_cases)
            assert not outcome.partial
            cases[symmetry] = outcome
        lumped, unlumped = cases[True], cases[False]
        for row_l, row_u in zip(lumped.results, unlumped.results):
            assert row_l.name == row_u.name
            for measure in ("availability", "running_vms"):
                delta = abs(row_l.measures[measure] - row_u.measures[measure])
                assert delta < TOLERANCE, (row_l.name, measure, delta)
        # the homogeneous case actually lumped; its report says so
        homogeneous_group = lumped.results[0].group
        report = next(g for g in lumped.groups if g.key == homogeneous_group)
        assert report.lumped and report.symmetry == "dc+pm"
        assert report.symmetry_group_order >= 2
        assert report.states_before_estimate >= report.number_of_states
        unlumped_states = unlumped.results[0].number_of_states
        assert lumped.results[0].number_of_states < unlumped_states
        # heterogeneous DCs stay unlumped at the DC level (machines=1 →
        # no PM orbits either, so no canonicalizer at all)
        heterogeneous_group = lumped.results[1].group
        report = next(g for g in lumped.groups if g.key == heterogeneous_group)
        assert not report.lumped
        assert (
            lumped.results[1].number_of_states
            == unlumped.results[1].number_of_states
        )


class TestPermutedParameterBlockDedupe:
    def scenarios(self):
        # Same three cities, data centers 1 and 2 swapped: the rate vectors
        # differ (TRE_13 reads Rio->NY vs Tokyo->NY) but only by the
        # permutation of the two exchangeable parameter blocks.
        return [
            MultiDataCenterScenario(
                locations=(RIO_DE_JANEIRO, TOKYO, NEW_YORK),
                machines_per_datacenter=1,
                capacity_aware_migration=True,
            ),
            MultiDataCenterScenario(
                locations=(TOKYO, RIO_DE_JANEIRO, NEW_YORK),
                machines_per_datacenter=1,
                capacity_aware_migration=True,
            ),
        ]

    def test_permuted_blocks_one_fingerprint_one_solve(self):
        outcome = evaluate_grid(
            self.scenarios(), parameters=TINY, use_cache=False, pipeline=False
        )
        assert not outcome.partial
        first, second = outcome.results
        # one structure fingerprint...
        assert first.group == second.group
        # ...and one stationary solve shared through the symmetry-aware
        # rate digest
        assert outcome.deduped_cases == 1
        assert {first.solve_source, second.solve_source} == {"solved", "deduped"}
        assert first.measures["availability"] == second.measures["availability"]

    def test_rate_vectors_genuinely_differ(self):
        a, b = [
            scenario_case(s, parameters=TINY).full_rates()
            for s in self.scenarios()
        ]
        assert a != b  # the dedupe is not the trivial bit-identical one

    def test_without_symmetry_no_dedupe(self):
        outcome = evaluate_grid(
            self.scenarios(),
            parameters=TINY,
            use_cache=False,
            pipeline=False,
            symmetry_reduction=False,
        )
        assert not outcome.partial
        assert outcome.deduped_cases == 0


class TestGridMeasureValidation:
    def test_per_dc_measure_on_lumped_grid_case_raises(self):
        scenario = homogeneous_mesh_scenario(
            3, machines_per_datacenter=1, capacity_aware_migration=True
        )
        case = scenario_case(scenario, parameters=TINY)
        assert case.canonicalizer is not None
        broken = replace(
            case,
            measures=(ExpectedTokensMeasure("dc1_pool", "#FailedVMS_1"),),
        )
        with pytest.raises(ConfigurationError, match="not invariant"):
            ScenarioGridOrchestrator(cache=None).run([broken])


class TestDefaultUnification:
    def test_library_default_is_on(self):
        from repro.symmetry import (
            DEFAULT_SYMMETRY_REDUCTION,
            resolve_symmetry_reduction,
        )

        assert DEFAULT_SYMMETRY_REDUCTION is True
        assert resolve_symmetry_reduction(None) is True
        assert resolve_symmetry_reduction(False) is False

    def test_solve_default_matches_explicit_on(self, mesh2_model):
        default = mesh2_model.solve(max_states=10_000)
        explicit = mesh2_model.solve(max_states=10_000, symmetry_reduction=True)
        off = mesh2_model.solve(max_states=10_000, symmetry_reduction=False)
        assert default.number_of_states == explicit.number_of_states
        assert default.number_of_states < off.number_of_states

    def test_runner_default_resolves_to_library_default(self):
        from repro.casestudy.runner import DistributedSweepRunner

        assert DistributedSweepRunner().symmetry_reduction is None

    def test_scenario_case_default_attaches_canonicalizer(self):
        scenario = homogeneous_mesh_scenario(2, machines_per_datacenter=1)
        case = scenario_case(scenario, parameters=TINY)
        assert case.canonicalizer is not None
        assert case.rate_symmetry is not None
        off = scenario_case(scenario, parameters=TINY, symmetry_reduction=False)
        assert off.canonicalizer is None
        assert off.rate_symmetry is None
