"""Shared fixtures of the symmetry-package tests.

All reduced-size models: one VM per machine and ``k = 1`` keep the state
spaces small enough that lumped *and* unlumped graphs generate in well
under a second each.
"""

import pytest

from repro.core.parameters import CaseStudyParameters
from repro.core.scenarios import (
    CITY_PAIRS,
    DistributedScenario,
    homogeneous_mesh_scenario,
)

#: Smallest useful case-study parameterisation (one VM, k = 1).
TINY = CaseStudyParameters(required_running_vms=1, vms_per_physical_machine=1)


@pytest.fixture(scope="session")
def mesh2_model():
    """Homogeneous 2-DC mesh, one machine per DC (kind ``dc+pm``... DC only)."""
    return homogeneous_mesh_scenario(2, machines_per_datacenter=1).build_model(TINY)


@pytest.fixture(scope="session")
def mesh3_model():
    """Homogeneous capacity-aware 3-DC mesh (small even unlumped)."""
    return homogeneous_mesh_scenario(
        3, machines_per_datacenter=1, capacity_aware_migration=True
    ).build_model(TINY)


@pytest.fixture(scope="session")
def mesh2_pm_model():
    """Homogeneous 2-DC mesh with two machines per DC (PM and DC groups)."""
    return homogeneous_mesh_scenario(2, machines_per_datacenter=2).build_model(TINY)


@pytest.fixture(scope="session")
def city_pair_model():
    """Heterogeneous city pair (Rio - Brasília): PM symmetry only."""
    first, second = CITY_PAIRS[0]
    return DistributedScenario(
        first, second, machines_per_datacenter=2
    ).build_model(TINY)
