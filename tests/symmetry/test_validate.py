"""Fail-fast validators: stale canonicalizers, asymmetric measures/rates."""

import pytest

from repro.exceptions import ConfigurationError, ModelError
from repro.spn.reachability import generate_tangible_reachability_graph
from repro.spn.rewards import (
    ExpectedTokensMeasure,
    ProbabilityMeasure,
    ThroughputMeasure,
)
from repro.symmetry import (
    build_canonicalizer,
    validate_canonicalizer,
    validate_measure_symmetry,
    validate_rate_symmetry,
)
from repro.symmetry.validate import measure_is_symmetric


class TestCanonicalizerValidation:
    def test_stale_spec_canonicalizer_rejected_by_generator(
        self, mesh2_model, mesh3_model
    ):
        # Built for the 2-DC net, offered to the 3-DC net: the place counts
        # differ, so generation must refuse instead of lumping wrongly.
        stale = build_canonicalizer(mesh2_model.symmetry_spec())
        with pytest.raises(ModelError, match="different net"):
            generate_tangible_reachability_graph(
                mesh3_model.build(), max_states=10_000, canonicalize=stale
            )

    def test_matching_spec_canonicalizer_accepted(self, mesh2_model):
        canonicalize = build_canonicalizer(mesh2_model.symmetry_spec())
        graph = generate_tangible_reachability_graph(
            mesh2_model.build(), max_states=10_000, canonicalize=canonicalize
        )
        assert graph.number_of_states > 0

    def test_specless_token_dropping_callable_rejected(self):
        def bogus(marking):
            return marking[:-1] + (0,)

        with pytest.raises(ModelError, match="token multiset"):
            validate_canonicalizer(bogus, 5, "net")

    def test_specless_wrong_length_rejected(self):
        with pytest.raises(ModelError, match="different net"):
            validate_canonicalizer(lambda m: m + (0,), 5, "net")

    def test_specless_non_idempotent_rejected(self):
        def rotate(marking):
            return marking[1:] + marking[:1]

        with pytest.raises(ModelError, match="idempotent"):
            validate_canonicalizer(rotate, 5, "net")

    def test_none_passes(self):
        validate_canonicalizer(None, 5, "net")


class TestMeasureSymmetry:
    def test_symmetric_availability_accepted(self, mesh3_model):
        spec = mesh3_model.symmetry_spec()
        net = mesh3_model.build()
        validate_measure_symmetry(
            (mesh3_model.availability_measure(),), spec, net.place_names
        )

    def test_per_dc_probability_rejected(self, mesh3_model):
        spec = mesh3_model.symmetry_spec()
        net = mesh3_model.build()
        measure = ProbabilityMeasure("dc1_vm_up", "#VM_UP_1 >= 1")
        with pytest.raises(ConfigurationError, match="not invariant"):
            validate_measure_symmetry((measure,), spec, net.place_names)

    def test_per_dc_expected_tokens_rejected(self, mesh3_model):
        spec = mesh3_model.symmetry_spec()
        net = mesh3_model.build()
        measure = ExpectedTokensMeasure("dc1_pool", "#FailedVMS_1")
        with pytest.raises(ConfigurationError, match="not invariant"):
            validate_measure_symmetry((measure,), spec, net.place_names)

    def test_throughput_inside_orbit_rejected(self, mesh3_model):
        spec = mesh3_model.symmetry_spec()
        net = mesh3_model.build()
        measure = ThroughputMeasure("dc1_disasters", "DC_1_F")
        with pytest.raises(ConfigurationError, match="exchangeable orbit"):
            validate_measure_symmetry((measure,), spec, net.place_names)

    def test_throughput_outside_orbit_accepted(self, mesh3_model):
        spec = mesh3_model.symmetry_spec()
        net = mesh3_model.build()
        validate_measure_symmetry(
            (ThroughputMeasure("backup_failures", "BKP_F"),),
            spec,
            net.place_names,
        )

    def test_probe_detects_symmetric_total(self, mesh3_model):
        spec = mesh3_model.symmetry_spec()
        net = mesh3_model.build()
        index = {name: i for i, name in enumerate(net.place_names)}
        total = ProbabilityMeasure(
            "any_pool", "(#FailedVMS_1 + #FailedVMS_2 + #FailedVMS_3) >= 1"
        )
        assert measure_is_symmetric(total.compiled(index), spec)


class TestRateSymmetry:
    def test_model_rates_pass_their_own_spec(self, mesh3_model):
        spec = mesh3_model.symmetry_spec()
        rates = {
            t.name: float(t.rate)
            for t in mesh3_model.build().transitions
            if not t.immediate
        }
        validate_rate_symmetry(rates, spec)

    def test_broken_profile_rate_rejected(self, mesh3_model):
        spec = mesh3_model.symmetry_spec()
        rates = {
            t.name: float(t.rate)
            for t in mesh3_model.build().transitions
            if not t.immediate
        }
        rates["DC_2_F"] = rates["DC_2_F"] * 3.0
        with pytest.raises(ConfigurationError, match="orbit representative"):
            validate_rate_symmetry(rates, spec)

    def test_broken_pair_rate_rejected(self, mesh3_model):
        spec = mesh3_model.symmetry_spec()
        rates = {
            t.name: float(t.rate)
            for t in mesh3_model.build().transitions
            if not t.immediate
        }
        rates["TRE_12"] = rates["TRE_12"] * 2.0
        with pytest.raises(ConfigurationError):
            validate_rate_symmetry(rates, spec)
