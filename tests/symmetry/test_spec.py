"""SymmetrySpec construction, validation and identity."""

import pickle

import pytest

from repro.symmetry import OrbitGroup, SymmetrySpec


def flat(*profiles):
    return OrbitGroup(profiles=tuple(tuple(p) for p in profiles))


def paired2(p0, p1, pair01, pair10):
    return OrbitGroup(
        profiles=(tuple(p0), tuple(p1)),
        pairs=(((), tuple(pair01)), (tuple(pair10), ())),
    )


class TestOrbitGroup:
    def test_needs_two_blocks(self):
        with pytest.raises(ValueError):
            OrbitGroup(profiles=((0, 1),))

    def test_profiles_must_align(self):
        with pytest.raises(ValueError):
            flat((0, 1), (2,))

    def test_pair_matrix_shape_enforced(self):
        with pytest.raises(ValueError):
            OrbitGroup(profiles=((0,), (1,)), pairs=(((), (2,)),))

    def test_diagonal_pairs_must_be_empty(self):
        with pytest.raises(ValueError):
            OrbitGroup(
                profiles=((0,), (1,)),
                pairs=(((9,), (2,)), ((3,), ())),
            )

    def test_size_and_labels(self):
        group = paired2((0, 1), (2, 3), (4,), (5,))
        assert group.size == 2
        assert group.paired
        assert sorted(group.labels()) == [0, 1, 2, 3, 4, 5]


class TestSymmetrySpec:
    def test_place_index_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="stale spec"):
            SymmetrySpec(place_count=3, marking_groups=(flat((0,), (5,)),))

    def test_string_labels_rejected_in_marking_groups(self):
        with pytest.raises(ValueError):
            SymmetrySpec(place_count=3, marking_groups=(flat(("a",), ("b",)),))

    def test_int_labels_rejected_in_rate_groups(self):
        with pytest.raises(ValueError):
            SymmetrySpec(
                place_count=3,
                marking_groups=(flat((0,), (1,)),),
                rate_groups=(flat((0,), (1,)),),
            )

    def test_two_paired_groups_rejected(self):
        pg = paired2((0,), (1,), (2,), (3,))
        pg2 = paired2((4,), (5,), (6,), (7,))
        with pytest.raises(ValueError, match="one paired"):
            SymmetrySpec(place_count=8, marking_groups=(pg, pg2))

    def test_paired_group_must_come_last(self):
        pg = paired2((0,), (1,), (2,), (3,))
        with pytest.raises(ValueError, match="last"):
            SymmetrySpec(place_count=8, marking_groups=(pg, flat((4,), (5,))))

    def test_group_order_is_product_of_factorials(self):
        spec = SymmetrySpec(
            place_count=10,
            marking_groups=(
                flat((0,), (1,), (2,)),
                paired2((3, 4), (5, 6), (7,), (8,)),
            ),
        )
        assert spec.group_order == 6 * 2

    def test_cache_id_is_stable_and_content_addressed(self):
        build = lambda: SymmetrySpec(  # noqa: E731
            place_count=4, marking_groups=(flat((0, 1), (2, 3)),)
        )
        assert build().cache_id == build().cache_id
        assert build().cache_id.startswith("sym:pm:")
        other = SymmetrySpec(place_count=4, marking_groups=(flat((0, 2), (1, 3)),))
        assert other.cache_id != build().cache_id

    def test_spec_pickles_and_compares_by_value(self):
        spec = SymmetrySpec(
            place_count=6,
            marking_groups=(paired2((0, 1), (2, 3), (4,), (5,)),),
            rate_groups=(flat(("T_1",), ("T_2",)),),
            kind="dc+pm",
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cache_id == spec.cache_id

    def test_generator_permutations_are_permutations(self):
        spec = SymmetrySpec(
            place_count=7,
            marking_groups=(
                flat((0,), (1,)),
                paired2((2, 3), (4, 5), (6,), (6,)),
            ),
        )
        generators = list(spec.generator_permutations())
        # one adjacent transposition per flat pair + one for the DC pair
        assert len(generators) == 2
        for g in generators:
            assert sorted(g) == list(range(7))

    def test_paired_generator_moves_pair_slots(self):
        spec = SymmetrySpec(
            place_count=6,
            marking_groups=(paired2((0, 1), (2, 3), (4,), (5,)),),
        )
        (g,) = spec.generator_permutations()
        marking = (10, 11, 20, 21, 7, 9)
        permuted = tuple(marking[g[p]] for p in range(6))
        # blocks swap, and the ordered pair slots (0,1)<->(1,0) swap too
        assert permuted == (20, 21, 10, 11, 9, 7)
