"""Property tests of the spec-driven canonicalizer.

The two load-bearing properties of exact lumping:

* **orbit constancy** — every permutation of a marking inside its orbit
  canonicalizes to the *same* representative (``f(σ·m) = f(m)``), not
  merely a stable one;
* **batch agreement** — the vectorized companion returns bit-identical
  representatives to the scalar path on every row (the
  ``_MarkingInterner`` contract).

Probed on the real case-study specs (PM-only, DC-only, DC+PM) with seeded
random markings and random group elements composed from the generating
transpositions.
"""

import numpy as np
import pytest

from repro.symmetry import SymmetrySpec, build_canonicalizer, rate_vector_key

SAMPLES = 60


def random_markings(rng, spec, samples=SAMPLES):
    return rng.integers(0, 4, size=(samples, spec.place_count), dtype=np.int64)


def random_group_element(rng, generators, place_count):
    """A random walk over the generating transpositions (a group element)."""
    g = list(range(place_count))
    for _ in range(rng.integers(1, 8)):
        step = generators[rng.integers(0, len(generators))]
        g = [g[step[p]] for p in range(place_count)]
    return g


def spec_of(model, **kwargs):
    spec = model.symmetry_spec(**kwargs)
    assert spec is not None
    return spec


@pytest.fixture(
    params=["mesh2_model", "mesh3_model", "mesh2_pm_model", "city_pair_model"]
)
def spec(request):
    return spec_of(request.getfixturevalue(request.param))


class TestOrbitConstancy:
    def test_random_orbit_permutations_share_one_representative(self, spec):
        rng = np.random.default_rng(0xC0DE)
        canonicalize = build_canonicalizer(spec)
        generators = list(spec.generator_permutations())
        for row in random_markings(rng, spec):
            marking = tuple(int(v) for v in row)
            reference = canonicalize(marking)
            for _ in range(6):
                g = random_group_element(rng, generators, spec.place_count)
                permuted = tuple(marking[g[p]] for p in range(spec.place_count))
                assert canonicalize(permuted) == reference

    def test_idempotent(self, spec):
        rng = np.random.default_rng(0x1DE)
        canonicalize = build_canonicalizer(spec)
        for row in random_markings(rng, spec):
            once = canonicalize(tuple(int(v) for v in row))
            assert canonicalize(once) == once

    def test_canonical_form_preserves_token_multiset(self, spec):
        rng = np.random.default_rng(0xBEEF)
        canonicalize = build_canonicalizer(spec)
        for row in random_markings(rng, spec):
            marking = tuple(int(v) for v in row)
            assert sorted(canonicalize(marking)) == sorted(marking)


class TestBatchAgreement:
    def test_batch_matches_scalar_bit_for_bit(self, spec):
        rng = np.random.default_rng(0xBA7C4)
        canonicalize = build_canonicalizer(spec)
        block = random_markings(rng, spec, samples=300)
        out = canonicalize.batch(block)
        for row, batch_row in zip(block, np.asarray(out)):
            scalar = canonicalize(tuple(int(v) for v in row))
            assert tuple(int(v) for v in batch_row) == scalar

    def test_batch_handles_tied_blocks_with_distinct_pair_slots(self, mesh3_model):
        # The ambiguous corner: identical DC block keys but non-uniform
        # transmission places — exactly where a naive stable sort would
        # split one orbit into several interned states.
        spec = spec_of(mesh3_model)
        canonicalize = build_canonicalizer(spec)
        paired = spec.marking_groups[-1]
        assert paired.paired
        base = [0] * spec.place_count
        pair_slots = [s for row in paired.pairs for e in row for s in e]
        block = []
        for slot in pair_slots:
            marking = list(base)
            marking[slot] = 1
            block.append(marking)
        block = np.asarray(block, dtype=np.int64)
        out = np.asarray(canonicalize.batch(block))
        for row, batch_row in zip(block, out):
            assert tuple(int(v) for v in batch_row) == canonicalize(
                tuple(int(v) for v in row)
            )

    def test_exposed_metadata(self, mesh3_model):
        spec = spec_of(mesh3_model)
        canonicalize = build_canonicalizer(spec)
        assert canonicalize.cache_id == spec.cache_id
        assert canonicalize.spec == spec
        assert canonicalize.group_order == spec.group_order


class TestRateVectorKey:
    def test_block_permuted_rate_vectors_share_a_key(self, mesh3_model):
        spec = spec_of(mesh3_model, structural=True)
        names = sorted(
            {name for group in spec.rate_groups for name in group.labels()}
        )
        names += ["OTHER_1", "OTHER_2"]
        key = rate_vector_key(spec, names)
        assert key is not None
        rng = np.random.default_rng(0x5EED)
        vector = rng.uniform(0.1, 5.0, size=len(names))
        paired = spec.rate_groups[-1]
        # swap DC blocks 0 and 1 in rate space
        swapped = vector.copy()
        index = {name: i for i, name in enumerate(names)}
        order = [1, 0] + list(range(2, paired.size))
        for k, src in enumerate(order):
            for dst_name, src_name in zip(paired.profiles[k], paired.profiles[src]):
                swapped[index[dst_name]] = vector[index[src_name]]
            for l, src_l in enumerate(order):
                if k == l:
                    continue
                for dst_name, src_name in zip(
                    paired.pairs[k][l], paired.pairs[src][src_l]
                ):
                    swapped[index[dst_name]] = vector[index[src_name]]
        assert not np.array_equal(swapped, vector)
        assert key(vector) == key(swapped)
        # a genuinely different vector hashes apart
        other = vector.copy()
        other[0] *= 2.0
        assert key(other) != key(vector)

    def test_missing_transition_disables_the_key(self, mesh3_model):
        spec = spec_of(mesh3_model, structural=True)
        assert rate_vector_key(spec, ("NOT_A_TRANSITION",)) is None

    def test_spec_without_rate_groups_disables_the_key(self):
        from repro.symmetry import OrbitGroup

        spec = SymmetrySpec(
            place_count=2,
            marking_groups=(OrbitGroup(profiles=((0,), (1,))),),
        )
        assert rate_vector_key(spec, ("A", "B")) is None
