"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.exitcodes import ExitCode


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_availability_defaults(self):
        arguments = build_parser().parse_args(["availability"])
        assert arguments.first == "Rio de Janeiro"
        assert arguments.second == "Brasilia"
        assert arguments.alpha == 0.35
        assert not arguments.full

    def test_figure7_pair_limit(self):
        arguments = build_parser().parse_args(["figure7", "--pairs", "2"])
        assert arguments.pairs == 2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_no_cache_flag(self):
        arguments = build_parser().parse_args(["availability", "--no-cache"])
        assert arguments.no_cache

    def test_cache_defaults_to_show(self):
        arguments = build_parser().parse_args(["cache"])
        assert arguments.action == "show"
        assert arguments.dir is None

    def test_cache_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "frobnicate"])

    def test_transient_defaults(self):
        arguments = build_parser().parse_args(["transient"])
        assert arguments.minutes == "5,30,60"
        assert arguments.window == 72.0
        assert arguments.points == 13
        assert arguments.backend == "auto"
        assert arguments.jobs is None

    def test_transient_accepts_custom_grid(self):
        arguments = build_parser().parse_args(
            ["transient", "--minutes", "5,120", "--window", "24", "--points", "5"]
        )
        assert arguments.minutes == "5,120"
        assert arguments.window == 24.0
        assert arguments.points == 5


class TestCommands:
    def test_availability_command(self, capsys):
        exit_code = main(
            ["availability", "--second", "Brasilia", "--alpha", "0.40", "--disaster-years", "200"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "availability" in output
        assert "nines" in output
        assert "Brasilia" in output

    def test_availability_rejects_unknown_city(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["availability", "--second", "Atlantis"])

    def test_table7_command_prints_every_row(self, capsys):
        assert main(["table7"]) == 0
        output = capsys.readouterr().out
        assert "Cloud system with one machine" in output
        assert "Tokyo" in output

    def test_figure7_command_restricted_to_one_pair(self, capsys):
        assert main(["figure7", "--pairs", "1"]) == 0
        output = capsys.readouterr().out
        assert output.count("Brasilia") == 9
        assert "Tokyo" not in output

    def test_transient_command_prints_every_curve(self, capsys):
        assert (
            main(
                [
                    "transient",
                    "--minutes",
                    "5,60",
                    "--window",
                    "12",
                    "--points",
                    "4",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert output.count("VM start time:") == 2
        assert "Interval avail." in output
        assert "mission interval availability" in output

    def test_transient_rejects_malformed_minutes(self):
        with pytest.raises(SystemExit):
            main(["transient", "--minutes", "five"])

    def test_ablations_command(self, capsys):
        assert main(["ablations"]) == 0
        output = capsys.readouterr().out
        assert "no_backup_server" in output

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity", "--factor", "2"]) == 0
        output = capsys.readouterr().out
        assert "physical_machine" in output

    def test_cache_show_and_clear(self, capsys, tmp_path):
        assert main(["cache", "--dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "entries         : 0" in output
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_availability_populates_and_reuses_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["availability"]) == 0
        assert "graph source  : generated" in capsys.readouterr().out
        assert main(["availability"]) == 0
        assert "graph source  : cache" in capsys.readouterr().out
        assert main(["availability", "--no-cache"]) == 0
        assert "graph source  : generated" in capsys.readouterr().out


class TestGridCommand:
    def test_grid_parser_defaults(self):
        arguments = build_parser().parse_args(["grid"])
        assert arguments.cities == "Rio de Janeiro+Brasilia;Rio de Janeiro"
        assert arguments.backup == "on"
        assert arguments.topology == "mesh"
        assert arguments.required_vms == 1
        assert arguments.shard_dir is None

    def test_grid_command_prints_rows_and_groups(self, capsys):
        assert (
            main(
                [
                    "grid",
                    "--cities",
                    "Rio de Janeiro+Brasilia;Rio de Janeiro",
                    "--alphas",
                    "0.35,0.45",
                    "--machines",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "structure group" in output
        assert "Rio de Janeiro single site" in output
        assert "alpha=0.45" in output

    def test_grid_command_writes_shards(self, capsys, tmp_path):
        shard_dir = tmp_path / "shards"
        assert (
            main(
                [
                    "grid",
                    "--cities",
                    "Rio de Janeiro",
                    "--machines",
                    "1,2",
                    "--shard-dir",
                    str(shard_dir),
                ]
            )
            == 0
        )
        assert list(shard_dir.glob("grid-shard-*.jsonl"))

    def test_grid_rejects_malformed_axis(self):
        with pytest.raises(SystemExit):
            main(["grid", "--alphas", "fast"])


class TestGridRobustnessFlags:
    # --jobs 2 keeps the pipeline (and its pool generation) active on
    # single-core CI machines; --no-cache keeps the fault sites reachable
    # on repeat runs.
    SMALL_GRID = [
        "--cities",
        "Rio de Janeiro",
        "--machines",
        "1,2",
        "--no-cache",
        "--jobs",
        "2",
    ]

    def test_parser_defaults(self):
        arguments = build_parser().parse_args(["grid"])
        assert arguments.resume is None
        assert arguments.max_retries == 2
        assert arguments.generate_deadline is None
        assert arguments.solve_deadline is None
        assert arguments.fault_plan is None

    def test_fault_plan_rejects_invalid_json(self, capsys):
        with pytest.raises(SystemExit) as caught:
            main(["grid", *self.SMALL_GRID, "--fault-plan", "{broken"])
        assert caught.value.code == int(ExitCode.INVALID_ARGS)
        assert "invalid plan" in capsys.readouterr().err

    def test_fault_plan_rejects_unknown_kind(self, capsys):
        with pytest.raises(SystemExit) as caught:
            main(
                ["grid", *self.SMALL_GRID, "--fault-plan", '[{"kind": "meteor"}]']
            )
        assert caught.value.code == int(ExitCode.INVALID_ARGS)
        assert "invalid plan" in capsys.readouterr().err

    def test_fault_plan_rejects_missing_file(self, capsys):
        with pytest.raises(SystemExit) as caught:
            main(["grid", *self.SMALL_GRID, "--fault-plan", "@/no/such/plan.json"])
        assert caught.value.code == int(ExitCode.INVALID_ARGS)
        assert "cannot read" in capsys.readouterr().err

    def test_resume_conflicting_with_shard_dir_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as caught:
            main(
                [
                    "grid",
                    *self.SMALL_GRID,
                    "--shard-dir",
                    str(tmp_path / "a"),
                    "--resume",
                    str(tmp_path / "b"),
                ]
            )
        assert caught.value.code == int(ExitCode.INVALID_ARGS)
        assert "shard directory" in capsys.readouterr().err

    def test_chaos_run_heals_and_is_cleared_afterwards(self, capsys):
        from repro.engine import faults

        plan = '[{"kind": "worker_kill", "site": "generate"}]'
        assert main(["grid", *self.SMALL_GRID, "--fault-plan", plan]) == 0
        output = capsys.readouterr().out
        assert "worker pool rebuilt" in output
        assert faults.active() is None  # the CLI uninstalls its plan

    def test_quarantine_exits_nonzero_and_reports(self, capsys, tmp_path):
        plan = '[{"kind": "task_exception", "site": "generate*", "count": 1000}]'
        with pytest.warns(UserWarning):
            exit_code = main(
                [
                    "grid",
                    *self.SMALL_GRID,
                    "--max-retries",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                    "--fault-plan",
                    plan,
                ]
            )
        # Every case quarantined: nothing to consume, so FAULTED, not PARTIAL.
        assert exit_code == int(ExitCode.FAULTED)
        captured = capsys.readouterr()
        assert "PARTIAL RESULT" in captured.out
        assert "grid incomplete" in captured.err
        assert (tmp_path / "grid-failures.jsonl").exists()

    def test_kill_then_resume_restores_completed_cases(self, capsys, tmp_path):
        # First run quarantines everything past the first group, leaving a
        # partial checkpoint; the resumed run restores it and solves the rest.
        plan = (
            '[{"kind": "task_exception", "site": "generate*", '
            '"after": 1, "count": 1000}]'
        )
        with pytest.warns(UserWarning):
            first = main(
                [
                    "grid",
                    *self.SMALL_GRID,
                    "--max-retries",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                    "--fault-plan",
                    plan,
                ]
            )
        assert first == int(ExitCode.PARTIAL)
        capsys.readouterr()
        assert (
            main(["grid", *self.SMALL_GRID, "--resume", str(tmp_path)]) == 0
        )
        output = capsys.readouterr().out
        assert "restored from checkpoint" in output
        assert "PARTIAL RESULT" not in output


class TestExitCodes:
    """The structured exit-code contract, pinned value by value."""

    def test_enum_values_are_pinned(self):
        assert int(ExitCode.OK) == 0
        assert int(ExitCode.INVALID_ARGS) == 2
        assert int(ExitCode.PARTIAL) == 3
        assert int(ExitCode.FAULTED) == 4

    def test_ok_pinned_on_clean_grid(self, capsys, tmp_path):
        exit_code = main(
            ["grid", "--cities", "Rio de Janeiro", "--machines", "1",
             "--shard-dir", str(tmp_path), "--no-progress"]
        )
        assert exit_code == int(ExitCode.OK) == 0

    def test_invalid_args_pinned(self, capsys):
        with pytest.raises(SystemExit) as caught:
            main(["grid", "--alphas", "fast"])
        assert caught.value.code == int(ExitCode.INVALID_ARGS) == 2
        assert "repro: error" in capsys.readouterr().err

    def test_argparse_errors_share_the_invalid_args_code(self, capsys):
        with pytest.raises(SystemExit) as caught:
            build_parser().parse_args(["grid", "--backup", "sometimes"])
        assert caught.value.code == int(ExitCode.INVALID_ARGS)

    def test_partial_pinned_when_some_cases_survive(self, capsys, tmp_path):
        plan = (
            '[{"kind": "task_exception", "site": "generate*", '
            '"after": 1, "count": 1000}]'
        )
        with pytest.warns(UserWarning):
            exit_code = main(
                ["grid", "--cities", "Rio de Janeiro", "--machines", "1,2",
                 "--no-cache", "--jobs", "2", "--max-retries", "0",
                 "--shard-dir", str(tmp_path), "--fault-plan", plan]
            )
        assert exit_code == int(ExitCode.PARTIAL) == 3

    def test_faulted_pinned_when_nothing_survives(self, capsys, tmp_path):
        plan = '[{"kind": "task_exception", "site": "generate*", "count": 1000}]'
        with pytest.warns(UserWarning):
            exit_code = main(
                ["grid", "--cities", "Rio de Janeiro", "--machines", "1,2",
                 "--no-cache", "--jobs", "2", "--max-retries", "0",
                 "--shard-dir", str(tmp_path), "--fault-plan", plan]
            )
        assert exit_code == int(ExitCode.FAULTED) == 4


class TestServiceParsers:
    def test_serve_requires_state_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_defaults(self):
        arguments = build_parser().parse_args(["serve", "--state-dir", "/tmp/x"])
        assert arguments.port == 0
        assert arguments.queue_depth == 8
        assert arguments.shard_size == 1
        assert arguments.deadline is None
        assert not arguments.quiet

    def test_serve_rejects_bad_depth(self, capsys):
        with pytest.raises(SystemExit) as caught:
            main(["serve", "--state-dir", "/tmp/x", "--queue-depth", "0"])
        assert caught.value.code == int(ExitCode.INVALID_ARGS)

    def test_submit_shares_grid_axes(self):
        arguments = build_parser().parse_args(
            ["submit", "--url", "http://127.0.0.1:1", "--cities",
             "Rio de Janeiro", "--machines", "1,2", "--backup", "both"]
        )
        assert arguments.machines == "1,2"
        assert arguments.backup == "both"
        assert not arguments.wait

    def test_submit_requires_url(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_jobs_flags(self):
        arguments = build_parser().parse_args(
            ["jobs", "--url", "http://127.0.0.1:1", "job-0001-abc", "--results"]
        )
        assert arguments.job_id == "job-0001-abc"
        assert arguments.results and not arguments.cancel

    def test_jobs_results_without_id_rejected(self, capsys):
        with pytest.raises(SystemExit) as caught:
            main(["jobs", "--url", "http://127.0.0.1:1", "--results"])
        assert caught.value.code == int(ExitCode.INVALID_ARGS)


class TestServiceCommandsEndToEnd:
    def test_serve_submit_jobs_roundtrip(self, capsys, tmp_path):
        """Drive submit/jobs against an in-process service via the CLI."""
        import threading

        from repro.service import AvailabilityService, ServiceConfig

        service = AvailabilityService(
            ServiceConfig(state_dir=tmp_path / "state", port=0)
        )
        host, port = service.start()
        url = f"http://{host}:{port}"
        try:
            exit_code = main(
                ["submit", "--url", url, "--cities", "Rio de Janeiro",
                 "--machines", "1", "--wait", "--timeout", "120"]
            )
            assert exit_code == int(ExitCode.OK)
            out = capsys.readouterr().out
            assert "done (1 result row(s))" in out

            assert main(["jobs", "--url", url]) == int(ExitCode.OK)
            listing = capsys.readouterr().out
            assert "done" in listing
            job_id = listing.split()[0]

            assert main(["jobs", "--url", url, job_id, "--results"]) == int(
                ExitCode.OK
            )
            assert '"availability"' in capsys.readouterr().out

            # Resubmission of the identical grid dedupes onto the same job.
            exit_code = main(
                ["submit", "--url", url, "--cities", "Rio de Janeiro",
                 "--machines", "1"]
            )
            assert exit_code == int(ExitCode.OK)
            assert "deduplicated" in capsys.readouterr().out
        finally:
            service.stop()

    def test_submit_unreachable_service_faults(self, capsys):
        exit_code = main(
            ["submit", "--url", "http://127.0.0.1:9", "--cities",
             "Rio de Janeiro"]
        )
        assert exit_code == int(ExitCode.FAULTED)
