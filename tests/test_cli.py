"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_availability_defaults(self):
        arguments = build_parser().parse_args(["availability"])
        assert arguments.first == "Rio de Janeiro"
        assert arguments.second == "Brasilia"
        assert arguments.alpha == 0.35
        assert not arguments.full

    def test_figure7_pair_limit(self):
        arguments = build_parser().parse_args(["figure7", "--pairs", "2"])
        assert arguments.pairs == 2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_no_cache_flag(self):
        arguments = build_parser().parse_args(["availability", "--no-cache"])
        assert arguments.no_cache

    def test_cache_defaults_to_show(self):
        arguments = build_parser().parse_args(["cache"])
        assert arguments.action == "show"
        assert arguments.dir is None

    def test_cache_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "frobnicate"])

    def test_transient_defaults(self):
        arguments = build_parser().parse_args(["transient"])
        assert arguments.minutes == "5,30,60"
        assert arguments.window == 72.0
        assert arguments.points == 13
        assert arguments.backend == "auto"
        assert arguments.jobs is None

    def test_transient_accepts_custom_grid(self):
        arguments = build_parser().parse_args(
            ["transient", "--minutes", "5,120", "--window", "24", "--points", "5"]
        )
        assert arguments.minutes == "5,120"
        assert arguments.window == 24.0
        assert arguments.points == 5


class TestCommands:
    def test_availability_command(self, capsys):
        exit_code = main(
            ["availability", "--second", "Brasilia", "--alpha", "0.40", "--disaster-years", "200"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "availability" in output
        assert "nines" in output
        assert "Brasilia" in output

    def test_availability_rejects_unknown_city(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["availability", "--second", "Atlantis"])

    def test_table7_command_prints_every_row(self, capsys):
        assert main(["table7"]) == 0
        output = capsys.readouterr().out
        assert "Cloud system with one machine" in output
        assert "Tokyo" in output

    def test_figure7_command_restricted_to_one_pair(self, capsys):
        assert main(["figure7", "--pairs", "1"]) == 0
        output = capsys.readouterr().out
        assert output.count("Brasilia") == 9
        assert "Tokyo" not in output

    def test_transient_command_prints_every_curve(self, capsys):
        assert (
            main(
                [
                    "transient",
                    "--minutes",
                    "5,60",
                    "--window",
                    "12",
                    "--points",
                    "4",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert output.count("VM start time:") == 2
        assert "Interval avail." in output
        assert "mission interval availability" in output

    def test_transient_rejects_malformed_minutes(self):
        with pytest.raises(SystemExit):
            main(["transient", "--minutes", "five"])

    def test_ablations_command(self, capsys):
        assert main(["ablations"]) == 0
        output = capsys.readouterr().out
        assert "no_backup_server" in output

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity", "--factor", "2"]) == 0
        output = capsys.readouterr().out
        assert "physical_machine" in output

    def test_cache_show_and_clear(self, capsys, tmp_path):
        assert main(["cache", "--dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "entries         : 0" in output
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_availability_populates_and_reuses_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["availability"]) == 0
        assert "graph source  : generated" in capsys.readouterr().out
        assert main(["availability"]) == 0
        assert "graph source  : cache" in capsys.readouterr().out
        assert main(["availability", "--no-cache"]) == 0
        assert "graph source  : generated" in capsys.readouterr().out


class TestGridCommand:
    def test_grid_parser_defaults(self):
        arguments = build_parser().parse_args(["grid"])
        assert arguments.cities == "Rio de Janeiro+Brasilia;Rio de Janeiro"
        assert arguments.backup == "on"
        assert arguments.topology == "mesh"
        assert arguments.required_vms == 1
        assert arguments.shard_dir is None

    def test_grid_command_prints_rows_and_groups(self, capsys):
        assert (
            main(
                [
                    "grid",
                    "--cities",
                    "Rio de Janeiro+Brasilia;Rio de Janeiro",
                    "--alphas",
                    "0.35,0.45",
                    "--machines",
                    "1",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "structure group" in output
        assert "Rio de Janeiro single site" in output
        assert "alpha=0.45" in output

    def test_grid_command_writes_shards(self, capsys, tmp_path):
        shard_dir = tmp_path / "shards"
        assert (
            main(
                [
                    "grid",
                    "--cities",
                    "Rio de Janeiro",
                    "--machines",
                    "1,2",
                    "--shard-dir",
                    str(shard_dir),
                ]
            )
            == 0
        )
        assert list(shard_dir.glob("grid-shard-*.jsonl"))

    def test_grid_rejects_malformed_axis(self):
        with pytest.raises(SystemExit):
            main(["grid", "--alphas", "fast"])


class TestGridRobustnessFlags:
    # --jobs 2 keeps the pipeline (and its pool generation) active on
    # single-core CI machines; --no-cache keeps the fault sites reachable
    # on repeat runs.
    SMALL_GRID = [
        "--cities",
        "Rio de Janeiro",
        "--machines",
        "1,2",
        "--no-cache",
        "--jobs",
        "2",
    ]

    def test_parser_defaults(self):
        arguments = build_parser().parse_args(["grid"])
        assert arguments.resume is None
        assert arguments.max_retries == 2
        assert arguments.generate_deadline is None
        assert arguments.solve_deadline is None
        assert arguments.fault_plan is None

    def test_fault_plan_rejects_invalid_json(self):
        with pytest.raises(SystemExit, match="invalid plan"):
            main(["grid", *self.SMALL_GRID, "--fault-plan", "{broken"])

    def test_fault_plan_rejects_unknown_kind(self):
        with pytest.raises(SystemExit, match="invalid plan"):
            main(
                ["grid", *self.SMALL_GRID, "--fault-plan", '[{"kind": "meteor"}]']
            )

    def test_fault_plan_rejects_missing_file(self):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["grid", *self.SMALL_GRID, "--fault-plan", "@/no/such/plan.json"])

    def test_resume_conflicting_with_shard_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="shard directory"):
            main(
                [
                    "grid",
                    *self.SMALL_GRID,
                    "--shard-dir",
                    str(tmp_path / "a"),
                    "--resume",
                    str(tmp_path / "b"),
                ]
            )

    def test_chaos_run_heals_and_is_cleared_afterwards(self, capsys):
        from repro.engine import faults

        plan = '[{"kind": "worker_kill", "site": "generate"}]'
        assert main(["grid", *self.SMALL_GRID, "--fault-plan", plan]) == 0
        output = capsys.readouterr().out
        assert "worker pool rebuilt" in output
        assert faults.active() is None  # the CLI uninstalls its plan

    def test_quarantine_exits_nonzero_and_reports(self, capsys, tmp_path):
        plan = '[{"kind": "task_exception", "site": "generate*", "count": 1000}]'
        with pytest.warns(UserWarning):
            exit_code = main(
                [
                    "grid",
                    *self.SMALL_GRID,
                    "--max-retries",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                    "--fault-plan",
                    plan,
                ]
            )
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "PARTIAL RESULT" in captured.out
        assert "grid incomplete" in captured.err
        assert (tmp_path / "grid-failures.jsonl").exists()

    def test_kill_then_resume_restores_completed_cases(self, capsys, tmp_path):
        # First run quarantines everything past the first group, leaving a
        # partial checkpoint; the resumed run restores it and solves the rest.
        plan = (
            '[{"kind": "task_exception", "site": "generate*", '
            '"after": 1, "count": 1000}]'
        )
        with pytest.warns(UserWarning):
            first = main(
                [
                    "grid",
                    *self.SMALL_GRID,
                    "--max-retries",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                    "--fault-plan",
                    plan,
                ]
            )
        assert first == 1
        capsys.readouterr()
        assert (
            main(["grid", *self.SMALL_GRID, "--resume", str(tmp_path)]) == 0
        )
        output = capsys.readouterr().out
        assert "restored from checkpoint" in output
        assert "PARTIAL RESULT" not in output
