"""Benchmark E10 — out-of-core chunked solving under an enforced memory budget.

The acceptance scenario of the representation-agnostic state-space tier: a
homogeneous N-data-center mesh whose *estimated* in-RAM footprint exceeds an
enforced memory budget is planned onto the **chunked** backend, generated
wave-by-wave straight to disk, and solved matrix-free — and the result must
match an unconstrained in-RAM control run below 1e-12 while the chunked
process's peak RSS stays under the budget.

Peak RSS (``ru_maxrss``) is monotone within a process, so each measured run
executes in its **own subprocess** (``--measure <config.json>``); the driver
only plans budgets, spawns the runs and checks the assertions:

* the memory-aware planner routed the budgeted run to ``chunked``;
* |availability(chunked) − availability(in-RAM control)| < 1e-12;
* (full mode only) the chunked subprocess's peak RSS is under the budget
  that the in-RAM estimate exceeded.

Stand-alone full runs (N=3 mesh, 43 904 tangible states) write
``BENCH_outofcore.json`` next to the repo root; ``--quick`` runs the
two-data-center mesh as the CI smoke (no file written, no RSS floor — CI
runners share memory unpredictably).
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: Agreement demanded between the chunked run and the in-RAM control.
MAX_DELTA = 1e-12

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src"


def build_model(datacenters: int, machines: int):
    from repro.core import CaseStudyParameters
    from repro.core.scenarios import homogeneous_mesh_scenario

    scenario = homogeneous_mesh_scenario(
        datacenters,
        machines_per_datacenter=machines,
        capacity_aware_migration=True,
    )
    return scenario.build_model(
        CaseStudyParameters(required_running_vms=1, vms_per_physical_machine=1)
    )


def measure(config_path: str) -> int:
    """Subprocess body: plan, generate, solve, report — one run per process."""
    from repro.engine import ScenarioBatchEngine
    from repro.engine.dispatch import peak_rss_bytes, plan_representation

    config = json.loads(Path(config_path).read_text())
    model = build_model(config["datacenters"], config["machines"])
    net = model.build()
    forced = config.get("forced")
    plan = plan_representation(
        net,
        config["max_states"],
        budget_bytes=config.get("memory_budget"),
        forced=forced,
    )
    if plan.representation == "refused":
        raise SystemExit(f"planner refused the run: {plan.reason}")
    started = time.perf_counter()
    engine = ScenarioBatchEngine(
        net,
        representation=plan.representation,
        max_states=config["max_states"],
    )
    engine.graph()
    generated = time.perf_counter()
    solution = engine.solve()
    solved = time.perf_counter()
    report = {
        "representation": plan.representation,
        "planner": plan.as_dict(),
        "states": engine.number_of_states,
        "availability": solution.probability(model.availability_expression()),
        "generate_seconds": round(generated - started, 3),
        "solve_seconds": round(solved - generated, 3),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    Path(config["output"]).write_text(json.dumps(report, indent=2) + "\n")
    return 0


def spawn(config: dict, directory: Path, label: str) -> dict:
    """Run one ``--measure`` subprocess and return its report."""
    config = dict(config, output=str(directory / f"{label}.json"))
    config_path = directory / f"{label}.config.json"
    config_path.write_text(json.dumps(config))
    environment = dict(os.environ)
    environment["PYTHONPATH"] = ":".join(
        [str(SOURCE_ROOT)]
        + ([environment["PYTHONPATH"]] if environment.get("PYTHONPATH") else [])
    )
    subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--measure", str(config_path)],
        check=True,
        timeout=1800,
        env=environment,
    )
    return json.loads(Path(config["output"]).read_text())


def run(quick: bool = False) -> int:
    from repro.engine.dispatch import peak_rss_bytes, plan_representation

    datacenters, machines = (2, 2) if quick else (3, 2)
    max_states = 500_000 if quick else 200_000
    net = build_model(datacenters, machines).build()

    # A budget the in-RAM estimate exceeds but the chunked working set
    # fits, so the run exercises the exact routing decision the budget is
    # meant to force.  Weighted toward the in-RAM estimate: the chunked
    # estimate models the steady solve working set, while the transient
    # generation peak (wave-expansion buffers) sits above it.
    sizing = plan_representation(net, max_states, budget_bytes=10**18)
    budget = (2 * sizing.estimated_bytes + sizing.chunked_estimated_bytes) // 3
    print(
        f"out-of-core smoke: N={datacenters} mesh, machines={machines}, "
        f"budget {budget / 1e6:.0f} MB "
        f"(in-RAM est {sizing.estimated_bytes / 1e6:.0f} MB, "
        f"chunked est {sizing.chunked_estimated_bytes / 1e6:.0f} MB)"
    )

    base = {
        "datacenters": datacenters,
        "machines": machines,
        "max_states": max_states,
    }
    with tempfile.TemporaryDirectory(prefix="bench-outofcore-") as scratch:
        directory = Path(scratch)
        budgeted = spawn(dict(base, memory_budget=budget), directory, "chunked")
        control = spawn(dict(base, forced="in_ram"), directory, "in_ram")

    delta = abs(budgeted["availability"] - control["availability"])
    rss = budgeted["peak_rss_bytes"]
    print(
        f"budgeted run : {budgeted['representation']} "
        f"({budgeted['states']} states, "
        f"gen {budgeted['generate_seconds']:.1f}s + "
        f"solve {budgeted['solve_seconds']:.1f}s, "
        f"peak RSS {rss / 1e6:.0f} MB)"
    )
    print(
        f"in-RAM control: {control['states']} states, "
        f"gen {control['generate_seconds']:.1f}s + "
        f"solve {control['solve_seconds']:.1f}s, "
        f"peak RSS {control['peak_rss_bytes'] / 1e6:.0f} MB"
    )
    print(f"|Δ availability| = {delta:.3e} (floor {MAX_DELTA:g})")

    failures = []
    if budgeted["representation"] != "chunked":
        failures.append(
            f"planner chose {budgeted['representation']!r} under the "
            f"{budget / 1e6:.0f} MB budget, expected 'chunked'"
        )
    if delta >= MAX_DELTA:
        failures.append(f"availability delta {delta:.3e} >= {MAX_DELTA:g}")
    if not quick and rss >= budget:
        failures.append(
            f"chunked peak RSS {rss / 1e6:.0f} MB is not under the "
            f"{budget / 1e6:.0f} MB budget"
        )
    for failure in failures:
        print(f"FAIL: {failure}")

    if not quick:
        report = {
            "benchmark": "outofcore",
            "datacenters": datacenters,
            "machines_per_datacenter": machines,
            "max_states": max_states,
            "memory_budget_bytes": budget,
            "budgeted": budgeted,
            "in_ram_control": control,
            "availability_delta": delta,
            "max_delta": MAX_DELTA,
            "rss_under_budget": rss < budget,
            "passed": not failures,
            "peak_rss_bytes": peak_rss_bytes(),
        }
        output = REPO_ROOT / "BENCH_outofcore.json"
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
    return 1 if failures else 0


if __name__ == "__main__":
    if "--measure" in sys.argv:
        raise SystemExit(measure(sys.argv[sys.argv.index("--measure") + 1]))
    raise SystemExit(run(quick="--quick" in sys.argv))
