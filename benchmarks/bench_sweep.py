"""Benchmark E7 — sweep backends: serial vs thread vs process scheduling.

Times the full Figure 7 sweep (all five city pairs x 9 (α, disaster) points,
45 scenarios on one shared state space) on every batch backend of
:class:`repro.engine.ScenarioBatchEngine`:

* ``serial``  — one warm-start chain over the whole sweep,
* ``thread``  — contiguous sweep-order chunks over a thread pool,
* ``process`` — the zero-copy shared-memory scheduler of
  :mod:`repro.engine.parallel` (one worker process per chunk, solutions
  returned through a shared ``(S, n)`` block, rewards in one GEMM),

at every worker count the machine can actually host (the engine clamps
workers to the *effective* cores — ``os.sched_getaffinity``, which honours
container CPU masks — so oversubscribed counts are not measured separately),
plus one ``backend="auto"`` run whose cost-aware dispatcher decision is
recorded verbatim.  Every backend must agree with the serial reference
below 1e-12 and no ``/dev/shm`` segment may survive the run.  Stand-alone
runs write the measurements to ``BENCH_sweep.json`` next to the repo root,
seeding the perf trajectory.

Process-backend speedups are only physical when the machine actually has
the cores: the ≥ 2.5x floor at 4 workers is asserted when the *effective*
core count (not the host's ``os.cpu_count``, which lies inside cgroup-
limited containers) is at least 4, and recorded as unmet otherwise.  On a
single effective core the dispatcher must keep ``auto`` within a few
percent of serial — the regression this PR fixes (0.06–0.08x of serial with
8 dispatched workers).

Run ``python benchmarks/bench_sweep.py`` for the full measurement,
``--quick`` for the CI smoke (reduced configuration, 2 workers, process
backend only), or under pytest (``pytest benchmarks/ --benchmark-only``).
"""

import json
import time
from pathlib import Path

from repro.casestudy import DistributedSweepRunner
from repro.casestudy.figure7 import figure7_grid
from repro.core import CaseStudyParameters
from repro.core.scenarios import CITY_PAIRS
from repro.engine.dispatch import effective_cpu_count, peak_rss_bytes
from repro.engine.parallel import leaked_segments, shared_memory_available

#: Cross-backend agreement demanded of every availability value.
MAX_DELTA = 1e-12

#: Required process-backend speedup over serial at ``SPEEDUP_WORKERS`` workers.
SPEEDUP_FLOOR = 2.5
SPEEDUP_WORKERS = 4

#: Worker counts of interest; counts above the effective cores are dropped
#: (the engine would clamp them to the same dispatch anyway).
REQUESTED_WORKER_COUNTS = (1, 2, 4, 8)

#: Allowed auto-vs-serial slowdown when the dispatcher resolves to serial
#: (timing noise only; the dispatch itself costs two probe solves that are
#: kept as results).
AUTO_SERIAL_RATIO = 1.05
AUTO_SERIAL_SLACK_SECONDS = 2.0


def measured_worker_counts() -> tuple[int, ...]:
    cores = effective_cpu_count()
    return tuple(sorted({min(count, cores) for count in REQUESTED_WORKER_COUNTS}))


def _reduced_runner() -> DistributedSweepRunner:
    return DistributedSweepRunner(
        parameters=CaseStudyParameters(required_running_vms=1),
        machines_per_datacenter=1,
    )


def _timed_sweep(runner, scenarios, backend, workers):
    """(availabilities, wall_seconds) of one sweep on one backend."""
    started = time.perf_counter()
    evaluations = runner.evaluate_many(
        scenarios, max_workers=workers if workers > 1 else None, backend=backend
    )
    seconds = time.perf_counter() - started
    engine_backend = runner.engine().last_run_backend
    if backend != "auto" and engine_backend != backend:
        raise AssertionError(
            f"requested the {backend!r} backend but the engine ran "
            f"{engine_backend!r}"
        )
    return [e.availability.availability for e in evaluations], seconds


def _max_delta(reference, values):
    return max(abs(a - b) for a, b in zip(reference, values))


def run_backend_matrix(runner, scenarios, worker_counts=None):
    """Measure every backend/worker combination against the serial reference."""
    if worker_counts is None:
        worker_counts = measured_worker_counts()
    leftovers_before = leaked_segments()
    runner.graph()  # one-off generation outside every timed section

    reference, serial_seconds = _timed_sweep(runner, scenarios, "serial", 1)
    runs = [
        {
            "backend": "serial",
            "workers": 1,
            "seconds": round(serial_seconds, 3),
            "speedup_vs_serial": 1.0,
            "max_delta_vs_serial": 0.0,
        }
    ]
    worst_delta = 0.0
    for backend in ("thread", "process"):
        for workers in worker_counts:
            values, seconds = _timed_sweep(runner, scenarios, backend, workers)
            delta = _max_delta(reference, values)
            worst_delta = max(worst_delta, delta)
            runs.append(
                {
                    "backend": backend,
                    "workers": workers,
                    "seconds": round(seconds, 3),
                    "speedup_vs_serial": round(serial_seconds / seconds, 3),
                    "max_delta_vs_serial": delta,
                }
            )
            print(
                f"{backend:>7s} x{workers}: {seconds:7.2f}s "
                f"({serial_seconds / seconds:5.2f}x vs serial, "
                f"max |Δavailability| = {delta:.2e})"
            )

    # One cost-aware dispatch at the largest requested worker count: the
    # dispatcher's choice (and its predictions) is recorded verbatim.
    auto_workers = max(REQUESTED_WORKER_COUNTS)
    values, auto_seconds = _timed_sweep(runner, scenarios, "auto", auto_workers)
    delta = _max_delta(reference, values)
    worst_delta = max(worst_delta, delta)
    engine = runner.engine()
    dispatch_record = {
        "requested_workers": auto_workers,
        "chosen_backend": engine.last_run_backend,
        "decision": (
            engine.last_dispatch.as_dict()
            if engine.last_dispatch is not None
            else f"short-circuited before the cost model "
            f"({effective_cpu_count()} effective core(s))"
        ),
        "note": (
            "the auto sweep runs last, so its serial chain warm-starts from "
            "the preceding backend matrix; the serial reference above ran "
            "cold — compare trends, not absolute auto-vs-serial seconds"
        ),
    }
    runs.append(
        {
            "backend": "auto",
            "workers": auto_workers,
            "seconds": round(auto_seconds, 3),
            "speedup_vs_serial": round(serial_seconds / auto_seconds, 3),
            "max_delta_vs_serial": delta,
            "resolved_to": engine.last_run_backend,
        }
    )
    print(
        f"   auto x{auto_workers}: {auto_seconds:7.2f}s "
        f"({serial_seconds / auto_seconds:5.2f}x vs serial, resolved to "
        f"{engine.last_run_backend!r})"
    )

    leaked = leaked_segments() - leftovers_before
    return {
        "scenarios": len(scenarios),
        "states": runner.graph().number_of_states,
        "serial_seconds": round(serial_seconds, 3),
        "auto_seconds": round(auto_seconds, 3),
        "auto_vs_serial_ratio": round(auto_seconds / serial_seconds, 3),
        "dispatcher": dispatch_record,
        "runs": runs,
        "max_cross_backend_delta": worst_delta,
        "shm_leak_free": not leaked,
        "leaked_segments": sorted(leaked),
    }


def _speedup_summary(report):
    """Evaluate the ≥ 2.5x-at-4-workers target against the measurements."""
    cores = effective_cpu_count()
    at_target = [
        run
        for run in report["runs"]
        if run["backend"] == "process" and run["workers"] == SPEEDUP_WORKERS
    ]
    speedup = at_target[0]["speedup_vs_serial"] if at_target else None
    met = speedup is not None and speedup >= SPEEDUP_FLOOR
    summary = {
        "required": SPEEDUP_FLOOR,
        "workers": SPEEDUP_WORKERS,
        "measured": speedup,
        "effective_cores": cores,
        "met": met,
    }
    if cores < SPEEDUP_WORKERS:
        summary["note"] = (
            f"machine exposes {cores} effective core(s); worker counts are "
            f"clamped there, so the {SPEEDUP_WORKERS}-worker speedup target "
            f"is not physically reachable here and is only asserted on "
            f">= {SPEEDUP_WORKERS}-effective-core machines"
        )
    return summary


def run(quick: bool = False) -> int:
    if not shared_memory_available():
        print("SKIP: shared-memory segments are unavailable in this environment")
        return 0

    if quick:
        runner = _reduced_runner()
        scenarios = figure7_grid(city_pairs=(CITY_PAIRS[0],))
        report = run_backend_matrix(
            runner, scenarios, worker_counts=(min(2, effective_cpu_count()),)
        )
        report["config"] = "reduced (1 PM/DC, 9 scenarios)"
    else:
        runner = DistributedSweepRunner()
        scenarios = figure7_grid()
        report = run_backend_matrix(runner, scenarios)
        report["config"] = "full (2 PM/DC, lumped, 45 scenarios)"
    report["effective_cores"] = effective_cpu_count()
    report["speedup_target"] = _speedup_summary(report)

    failures = []
    if report["max_cross_backend_delta"] >= MAX_DELTA:
        failures.append(
            f"cross-backend deviation {report['max_cross_backend_delta']:.2e} "
            f"exceeds {MAX_DELTA:.0e}"
        )
    if not report["shm_leak_free"]:
        failures.append(f"leaked shared-memory segments: {report['leaked_segments']}")
    target = report["speedup_target"]
    if (
        not quick
        and target["effective_cores"] >= SPEEDUP_WORKERS
        and not target["met"]
    ):
        failures.append(
            f"process backend reached only {target['measured']}x at "
            f"{SPEEDUP_WORKERS} workers (required {SPEEDUP_FLOOR}x on a "
            f"{target['effective_cores']}-effective-core machine)"
        )
    if report["dispatcher"]["chosen_backend"] == "serial":
        bound = max(
            AUTO_SERIAL_RATIO * report["serial_seconds"],
            report["serial_seconds"] + AUTO_SERIAL_SLACK_SECONDS,
        )
        if report["auto_seconds"] > bound:
            failures.append(
                f"auto resolved to serial but took {report['auto_seconds']}s vs "
                f"{report['serial_seconds']}s serial (allowed {bound:.2f}s)"
            )

    if not quick:
        output = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
        report["peak_rss_bytes"] = peak_rss_bytes()
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    print(
        f"max cross-backend |Δ| = {report['max_cross_backend_delta']:.2e}, "
        f"shm leak free = {report['shm_leak_free']}"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


# --- pytest-benchmark entry points ----------------------------------------


def bench_process_backend_agrees_with_serial(benchmark, sweep_runner):
    """Process backend on two city pairs: agreement + timing via pytest."""
    if not shared_memory_available():
        import pytest

        pytest.skip("shared memory unavailable")
    scenarios = figure7_grid(city_pairs=(CITY_PAIRS[0], CITY_PAIRS[4]))
    sweep_runner.graph()
    reference, _ = _timed_sweep(sweep_runner, scenarios, "serial", 1)

    def process_sweep():
        values, _ = _timed_sweep(sweep_runner, scenarios, "process", 2)
        return values

    values = benchmark.pedantic(process_sweep, rounds=1, iterations=1)
    assert _max_delta(reference, values) < MAX_DELTA
    assert not leaked_segments()


if __name__ == "__main__":
    import sys

    raise SystemExit(run(quick="--quick" in sys.argv))
