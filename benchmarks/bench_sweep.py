"""Benchmark E7 — sweep backends: serial vs thread vs process scheduling.

Times the full Figure 7 sweep (all five city pairs x 9 (α, disaster) points,
45 scenarios on one shared state space) on every batch backend of
:class:`repro.engine.ScenarioBatchEngine`:

* ``serial``  — one warm-start chain over the whole sweep,
* ``thread``  — contiguous sweep-order chunks over a thread pool,
* ``process`` — the zero-copy shared-memory scheduler of
  :mod:`repro.engine.parallel` (one worker process per chunk, solutions
  returned through a shared ``(S, n)`` block, rewards in one GEMM),

at 1/2/4/8 workers, asserting that every backend agrees with the serial
reference below 1e-12 and that no ``/dev/shm`` segment survives the run.
Stand-alone runs write the measurements to ``BENCH_sweep.json`` next to the
repo root, seeding the perf trajectory.

Process-backend speedups are only physical when the machine actually has
the cores: the ≥ 2.5x floor at 4 workers is asserted when
``os.cpu_count() >= 4`` and recorded as unmet (with the CPU count) on
smaller machines, where worker processes time-share one core and the extra
per-worker ILU factorisations dominate.

Run ``python benchmarks/bench_sweep.py`` for the full measurement,
``--quick`` for the CI smoke (reduced configuration, 2 workers, process
backend only), or under pytest (``pytest benchmarks/ --benchmark-only``).
"""

import json
import os
import time
from pathlib import Path

from repro.casestudy import DistributedSweepRunner
from repro.casestudy.figure7 import figure7_grid
from repro.core import CaseStudyParameters
from repro.core.scenarios import CITY_PAIRS
from repro.engine.parallel import leaked_segments, shared_memory_available

#: Cross-backend agreement demanded of every availability value.
MAX_DELTA = 1e-12

#: Required process-backend speedup over serial at ``SPEEDUP_WORKERS`` workers.
SPEEDUP_FLOOR = 2.5
SPEEDUP_WORKERS = 4

#: Worker counts measured for the thread and process backends.
WORKER_COUNTS = (1, 2, 4, 8)


def _reduced_runner() -> DistributedSweepRunner:
    return DistributedSweepRunner(
        parameters=CaseStudyParameters(required_running_vms=1),
        machines_per_datacenter=1,
    )


def _timed_sweep(runner, scenarios, backend, workers):
    """(availabilities, wall_seconds) of one sweep on one backend."""
    started = time.perf_counter()
    evaluations = runner.evaluate_many(
        scenarios, max_workers=workers if workers > 1 else None, backend=backend
    )
    seconds = time.perf_counter() - started
    engine_backend = runner.engine().last_run_backend
    if backend != "auto" and engine_backend != backend:
        raise AssertionError(
            f"requested the {backend!r} backend but the engine ran "
            f"{engine_backend!r}"
        )
    return [e.availability.availability for e in evaluations], seconds


def _max_delta(reference, values):
    return max(abs(a - b) for a, b in zip(reference, values))


def run_backend_matrix(runner, scenarios, worker_counts=WORKER_COUNTS):
    """Measure every backend/worker combination against the serial reference."""
    leftovers_before = leaked_segments()
    runner.graph()  # one-off generation outside every timed section

    reference, serial_seconds = _timed_sweep(runner, scenarios, "serial", 1)
    runs = [
        {
            "backend": "serial",
            "workers": 1,
            "seconds": round(serial_seconds, 3),
            "speedup_vs_serial": 1.0,
            "max_delta_vs_serial": 0.0,
        }
    ]
    worst_delta = 0.0
    for backend in ("thread", "process"):
        for workers in worker_counts:
            values, seconds = _timed_sweep(runner, scenarios, backend, workers)
            delta = _max_delta(reference, values)
            worst_delta = max(worst_delta, delta)
            runs.append(
                {
                    "backend": backend,
                    "workers": workers,
                    "seconds": round(seconds, 3),
                    "speedup_vs_serial": round(serial_seconds / seconds, 3),
                    "max_delta_vs_serial": delta,
                }
            )
            print(
                f"{backend:>7s} x{workers}: {seconds:7.2f}s "
                f"({serial_seconds / seconds:5.2f}x vs serial, "
                f"max |Δavailability| = {delta:.2e})"
            )
    leaked = leaked_segments() - leftovers_before
    return {
        "scenarios": len(scenarios),
        "states": runner.graph().number_of_states,
        "serial_seconds": round(serial_seconds, 3),
        "runs": runs,
        "max_cross_backend_delta": worst_delta,
        "shm_leak_free": not leaked,
        "leaked_segments": sorted(leaked),
    }


def _speedup_summary(report):
    """Evaluate the ≥ 2.5x-at-4-workers target against the measurements."""
    cores = os.cpu_count() or 1
    at_target = [
        run
        for run in report["runs"]
        if run["backend"] == "process" and run["workers"] == SPEEDUP_WORKERS
    ]
    speedup = at_target[0]["speedup_vs_serial"] if at_target else None
    met = speedup is not None and speedup >= SPEEDUP_FLOOR
    summary = {
        "required": SPEEDUP_FLOOR,
        "workers": SPEEDUP_WORKERS,
        "measured": speedup,
        "cpu_count": cores,
        "met": met,
    }
    if cores < SPEEDUP_WORKERS:
        summary["note"] = (
            f"machine exposes {cores} core(s); {SPEEDUP_WORKERS} worker "
            f"processes time-share them, so the parallel speedup target is "
            f"not physically reachable here and is only asserted on "
            f">= {SPEEDUP_WORKERS}-core machines"
        )
    return summary


def run(quick: bool = False) -> int:
    if not shared_memory_available():
        print("SKIP: shared-memory segments are unavailable in this environment")
        return 0

    if quick:
        runner = _reduced_runner()
        scenarios = figure7_grid(city_pairs=(CITY_PAIRS[0],))
        report = run_backend_matrix(runner, scenarios, worker_counts=(2,))
        report["config"] = "reduced (1 PM/DC, 9 scenarios)"
    else:
        runner = DistributedSweepRunner()
        scenarios = figure7_grid()
        report = run_backend_matrix(runner, scenarios)
        report["config"] = "full (2 PM/DC, lumped, 45 scenarios)"
    report["cpu_count"] = os.cpu_count()
    report["speedup_target"] = _speedup_summary(report)

    failures = []
    if report["max_cross_backend_delta"] >= MAX_DELTA:
        failures.append(
            f"cross-backend deviation {report['max_cross_backend_delta']:.2e} "
            f"exceeds {MAX_DELTA:.0e}"
        )
    if not report["shm_leak_free"]:
        failures.append(f"leaked shared-memory segments: {report['leaked_segments']}")
    target = report["speedup_target"]
    if (
        not quick
        and target["cpu_count"] >= SPEEDUP_WORKERS
        and not target["met"]
    ):
        failures.append(
            f"process backend reached only {target['measured']}x at "
            f"{SPEEDUP_WORKERS} workers (required {SPEEDUP_FLOOR}x on a "
            f"{target['cpu_count']}-core machine)"
        )

    if not quick:
        output = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    print(
        f"max cross-backend |Δ| = {report['max_cross_backend_delta']:.2e}, "
        f"shm leak free = {report['shm_leak_free']}"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


# --- pytest-benchmark entry points ----------------------------------------


def bench_process_backend_agrees_with_serial(benchmark, sweep_runner):
    """Process backend on two city pairs: agreement + timing via pytest."""
    if not shared_memory_available():
        import pytest

        pytest.skip("shared memory unavailable")
    scenarios = figure7_grid(city_pairs=(CITY_PAIRS[0], CITY_PAIRS[4]))
    sweep_runner.graph()
    reference, _ = _timed_sweep(sweep_runner, scenarios, "serial", 1)

    def process_sweep():
        values, _ = _timed_sweep(sweep_runner, scenarios, "process", 2)
        return values

    values = benchmark.pedantic(process_sweep, rounds=1, iterations=1)
    assert _max_delta(reference, values) < MAX_DELTA
    assert not leaked_segments()


if __name__ == "__main__":
    import sys

    raise SystemExit(run(quick="--quick" in sys.argv))
