"""Benchmark E5 — solver performance and analytic/simulation cross-validation.

Measures the three stages of the analysis pipeline on the four-machine
single-site model (the largest configuration with a compact state space):
tangible reachability-graph generation, CTMC steady-state solution, and the
Monte-Carlo simulator; and checks that the analytic and simulated
availability agree.
"""

import numpy as np
import pytest

from repro.core import CloudSystemModel, single_datacenter_spec
from repro.markov import solvers
from repro.spn import (
    ProbabilityMeasure,
    generate_tangible_reachability_graph,
    simulate,
    solve_steady_state,
)


@pytest.fixture(scope="module")
def four_machine_model():
    return CloudSystemModel(spec=single_datacenter_spec(machines=4))


@pytest.fixture(scope="module")
def four_machine_graph(four_machine_model):
    return generate_tangible_reachability_graph(four_machine_model.build())


def bench_state_space_generation(benchmark, four_machine_model):
    graph = benchmark.pedantic(
        generate_tangible_reachability_graph,
        args=(four_machine_model.build(),),
        rounds=1,
        iterations=1,
    )
    assert graph.number_of_states == pytest.approx(2314, abs=0)


def bench_steady_state_solution(benchmark, four_machine_model, four_machine_graph):
    solution = benchmark(solve_steady_state, four_machine_graph)
    availability = solution.probability(four_machine_model.availability_expression())
    # Disaster-limited: just under the 0.9901 single-site ceiling.
    assert 0.985 < availability < 0.9902


def bench_symmetry_reduced_solution(benchmark, four_machine_model, four_machine_graph):
    def reduced():
        return four_machine_model.solve(symmetry_reduction=True)

    lumped = benchmark.pedantic(reduced, rounds=1, iterations=1)
    full = solve_steady_state(four_machine_graph)
    expression = four_machine_model.availability_expression()
    # The lumped chain is several times smaller yet yields the same metric.
    assert lumped.number_of_states < four_machine_graph.number_of_states
    assert lumped.probability(expression) == pytest.approx(
        full.probability(expression), rel=1e-9
    )


def _birth_death_generator(n: int, arrival: float = 1.0, service: float = 1.7) -> np.ndarray:
    """Dense generator of an M/M/1/K-style birth-death chain with ``n`` states."""
    q = np.zeros((n, n))
    for i in range(n - 1):
        q[i, i + 1] = arrival
        q[i + 1, i] = service
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


def bench_gth_elimination(benchmark):
    """GTH elimination with the vectorized rank-1 inner update.

    The per-column Python loop of the seed implementation collapsed into one
    ``np.outer`` update per elimination step; this benchmark tracks that the
    dense elimination stays fast and keeps agreeing with the sparse direct
    solver to near machine precision.
    """
    q = _birth_death_generator(800)
    pi = benchmark(solvers.steady_state, q, method="gth")
    reference = solvers.steady_state(q, method="direct")
    assert np.max(np.abs(pi - reference)) < 1e-12
    # Closed form of the birth-death stationary ratio as a sanity anchor.
    assert pi[1] / pi[0] == pytest.approx(1.0 / 1.7, rel=1e-9)


def bench_simulation_cross_validation(benchmark):
    """Analytic vs. simulated availability of the four-machine site.

    The Table VI disaster parameters make disasters a rare event (mean time
    100 years), which a finite-horizon simulation cannot estimate tightly, so
    the cross-validation uses a time-compressed disaster process (mean time
    2 years, recovery 0.2 years): the same model structure with every regime
    visited often enough for the simulator to converge.
    """
    from repro.core import CaseStudyParameters, DisasterParameters

    parameters = CaseStudyParameters(
        disaster=DisasterParameters.from_years(2.0, recovery_years=0.2)
    )
    model = CloudSystemModel(
        spec=single_datacenter_spec(machines=4), parameters=parameters
    )
    expression = model.availability_expression()
    analytic = solve_steady_state(model.build()).probability(expression)

    def run_simulation():
        return simulate(
            model.build(),
            [ProbabilityMeasure("availability", expression)],
            horizon=300_000.0,
            replications=3,
            seed=2013,
        )

    result = benchmark.pedantic(run_simulation, rounds=1, iterations=1)
    assert result.value("availability") == pytest.approx(analytic, abs=0.02)
