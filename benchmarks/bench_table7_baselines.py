"""Benchmark E1 — Table VII: availability of the baseline architectures.

Regenerates every row of Table VII (three single-site baselines and the five
two-data-center baseline architectures at α = 0.35 / 100-year disasters) and
checks that the qualitative shape of the published table holds: more machines
help a little, geographic distribution helps a lot, and availability decreases
monotonically with the distance between the data centers.
"""

import pytest

from repro.casestudy import PAPER_TABLE_VII, distributed_rows, single_site_rows
from repro.casestudy.report import render_table7


def test_paper_reference_rows_available():
    """The published table has eight rows; we track every one of them."""
    assert len(PAPER_TABLE_VII) == 8


def bench_single_site_rows(benchmark):
    rows = benchmark.pedantic(single_site_rows, rounds=1, iterations=1)
    assert len(rows) == 3
    values = [row.measured.availability for row in rows]
    # Shape: one machine < two machines <= four machines, all disaster-limited.
    assert values[0] < values[1] <= values[2] + 1e-9
    assert all(value < 0.9902 for value in values)
    # Within a third of a nine of the published values.
    for row in rows:
        assert row.nines_difference == pytest.approx(0.0, abs=0.35)


def bench_distributed_baseline_rows(benchmark, sweep_runner):
    rows = benchmark.pedantic(
        distributed_rows, args=(sweep_runner,), rounds=1, iterations=1
    )
    assert len(rows) == 5
    values = [row.measured.availability for row in rows]
    # Shape: availability decreases monotonically with distance from Rio.
    assert values == sorted(values, reverse=True)
    # Shape: every distributed architecture clearly beats every single site.
    single = [row.measured.availability for row in single_site_rows()]
    assert min(values) > max(single)
    print()
    print(render_table7(rows))
