"""Benchmark E6 — ablations over the design knobs of Section III.

Evaluates the warm pool, the backup server, the availability threshold k and
the VM start time on a two-data-center deployment, and checks the directions
a designer would expect: removing the backup server costs availability, warm
spares add availability, stricter thresholds and slower VM starts cost
availability.
"""

from repro.casestudy import AblationStudy, render_ablations


def bench_ablation_suite(benchmark):
    study = AblationStudy()
    results = benchmark.pedantic(study.run_default_suite, rounds=1, iterations=1)
    print()
    print(render_ablations(results))
    by_name = {result.name: result for result in results}
    reference = by_name["reference"].availability.availability

    assert by_name["no_backup_server"].availability.availability <= reference
    assert by_name["warm_pool_1"].availability.availability >= reference
    assert by_name["vm_start_30min"].availability.availability <= reference
    assert by_name["threshold_k2"].availability.availability < reference
    # The backup server is the single most valuable mechanism for disaster
    # tolerance in this configuration.
    losses = {
        name: reference - result.availability.availability
        for name, result in by_name.items()
        if name != "reference"
    }
    assert max(losses, key=losses.get) == "no_backup_server"
