"""Benchmark E3 — one-at-a-time sensitivity of the Table VI parameters.

Runs the sensitivity sweep on the two-machine single-site model and checks
the design insight the related work (Dantas et al. [13]) reports and the
paper echoes: improving the physical machines dominates improving the network
equipment, and more reliable machines alone cannot lift a single site past
the disaster ceiling.
"""

import pytest

from repro.casestudy import SensitivityAnalysis, render_sensitivity
from repro.core import CloudSystemModel, single_datacenter_spec


def two_machine_factory(parameters):
    return CloudSystemModel(
        spec=single_datacenter_spec(
            machines=2,
            vms_per_machine=parameters.vms_per_physical_machine,
            required_running_vms=parameters.required_running_vms,
        ),
        parameters=parameters,
    )


def bench_sensitivity_sweep(benchmark):
    analysis = SensitivityAnalysis(
        model_factory=two_machine_factory,
        factor=2.0,
        components=[
            "operating_system",
            "physical_machine",
            "switch",
            "router",
            "nas",
            "virtual_machine",
        ],
    )
    entries = benchmark.pedantic(analysis.run, rounds=1, iterations=1)
    print()
    print(render_sensitivity(entries))
    by_component = {entry.component: entry for entry in entries}

    # Improving any MTTF never hurts.
    assert all(entry.availability_delta >= -1e-12 for entry in entries)
    # Machines matter more than network gear for this architecture.
    assert abs(by_component["physical_machine"].availability_delta) > abs(
        by_component["router"].availability_delta
    )
    # Even doubling every machine MTTF cannot beat the disaster ceiling.
    assert all(entry.perturbed_availability < 0.9902 for entry in entries)
