"""Benchmark E2 — Figure 7: availability increase of distributed configurations.

Regenerates the Figure 7 sweep (α ∈ {0.35, 0.40, 0.45} × disaster mean time ∈
{100, 200, 300} years) for a subset of city pairs and checks the qualitative
claims of Section V: improvements are monotone in α and in the disaster mean
time, the best configuration is the closest pair with the fastest network and
the rarest disasters, and the disaster mean time matters most at short
distances while the network speed matters most at long distances.

The benchmark evaluates the nearest and the farthest pair (Brasília and
Tokyo); ``scripts/run_full_casestudy.py`` produces all five pairs.
"""

import time

import pytest

from repro.casestudy import best_configuration, render_figure7, reproduce_figure7
from repro.casestudy.figure7 import figure7_grid
from repro.core.scenarios import CITY_PAIRS
from repro.spn import solve_steady_state, with_transition_delays

BENCH_PAIRS = (CITY_PAIRS[0], CITY_PAIRS[4])  # Rio-Brasilia and Rio-Tokyo


def seed_style_loop(runner, scenarios):
    """The seed code path: per-scenario re-rate + cold steady-state solve.

    This is what the pipeline did before the batch engine: every scenario
    re-rates the shared graph and then solves the CTMC from scratch — no
    symbolic system reuse, no factorisation reuse, no warm starts.  Kept
    here as the reference both for the speedup measurement and for the
    numerical-equivalence check.
    """
    graph = runner.graph()
    expression = runner.reference_model().availability_expression()
    availabilities = []
    for scenario in scenarios:
        re_rated = with_transition_delays(graph, runner.scenario_delays(scenario))
        availabilities.append(
            solve_steady_state(re_rated, method=runner.method).probability(expression)
        )
    return availabilities


def bench_batch_engine_vs_seed_loop(benchmark, sweep_runner):
    """Acceptance benchmark: the batch engine must beat the seed loop.

    Same state space (generated once, outside both timed sections), same
    scenarios; the engine path re-fills one symbolic system and reuses the
    factorisation / warm start, the seed path cold-solves every scenario.
    Per-scenario availabilities must agree to 1e-10.
    """
    scenarios = figure7_grid(city_pairs=(CITY_PAIRS[0],))  # 9-point grid
    sweep_runner.graph()  # one-off generation outside the timed sections

    started = time.perf_counter()
    seed_values = seed_style_loop(sweep_runner, scenarios)
    seed_seconds = time.perf_counter() - started

    def engine_batch():
        return sweep_runner.evaluate_many(scenarios)

    evaluations = benchmark.pedantic(engine_batch, rounds=1, iterations=1)
    engine_seconds = sum(e.solve_seconds for e in evaluations)

    worst = max(
        abs(evaluation.availability.availability - seed_value)
        for evaluation, seed_value in zip(evaluations, seed_values)
    )
    print()
    print(
        f"engine batch: {engine_seconds:.2f}s, seed-style loop: {seed_seconds:.2f}s "
        f"({seed_seconds / engine_seconds:.1f}x), max |Δavailability| = {worst:.2e}"
    )
    assert worst < 1e-10
    assert engine_seconds < seed_seconds


def bench_figure7_two_pairs(benchmark, sweep_runner):
    points = benchmark.pedantic(
        reproduce_figure7,
        kwargs={"runner": sweep_runner, "city_pairs": BENCH_PAIRS},
        rounds=1,
        iterations=1,
    )
    assert len(points) == 2 * 9
    print()
    print(render_figure7(points))

    by_pair = {}
    for point in points:
        by_pair.setdefault(point.city_pair, []).append(point)

    for pair_points in by_pair.values():
        baseline = [p for p in pair_points if p.is_baseline]
        assert len(baseline) == 1
        # Improvements are measured against the pair's own baseline and are
        # therefore non-negative across the swept grid.
        assert all(p.improvement_over_baseline >= -1e-9 for p in pair_points)
        # Monotonicity in alpha at fixed disaster mean time.
        for years in (100.0, 200.0, 300.0):
            series = sorted(
                (p for p in pair_points if p.disaster_mean_time_years == years),
                key=lambda p: p.alpha,
            )
            availabilities = [p.availability for p in series]
            assert availabilities == sorted(availabilities)
        # Monotonicity in disaster mean time at fixed alpha.
        for alpha in (0.35, 0.40, 0.45):
            series = sorted(
                (p for p in pair_points if p.alpha == alpha),
                key=lambda p: p.disaster_mean_time_years,
            )
            availabilities = [p.availability for p in series]
            assert availabilities == sorted(availabilities)

    # The best configuration overall combines the nearest pair, the fastest
    # network and the rarest disasters (the paper's headline conclusion).
    best = best_configuration(points)
    assert best.city_pair == "Rio de Janeiro - Brasilia"
    assert best.alpha == pytest.approx(0.45)
    assert best.disaster_mean_time_years == pytest.approx(300.0)

    # Relative influence: at short distance the disaster mean time dominates,
    # at long distance the network speed has comparatively more weight.
    near = by_pair["Rio de Janeiro - Brasilia"]
    far = by_pair["Rio de Janeiro - Tokyo"]

    def effect(points_of_pair, *, vary_alpha):
        baseline = next(p for p in points_of_pair if p.is_baseline)
        if vary_alpha:
            other = next(
                p for p in points_of_pair if p.alpha == 0.45 and p.disaster_mean_time_years == 100.0
            )
        else:
            other = next(
                p for p in points_of_pair if p.alpha == 0.35 and p.disaster_mean_time_years == 300.0
            )
        return other.nines - baseline.nines

    near_alpha_effect = effect(near, vary_alpha=True)
    near_disaster_effect = effect(near, vary_alpha=False)
    far_alpha_effect = effect(far, vary_alpha=True)
    far_disaster_effect = effect(far, vary_alpha=False)
    assert near_disaster_effect > near_alpha_effect
    assert (far_alpha_effect / max(far_disaster_effect, 1e-9)) > (
        near_alpha_effect / max(near_disaster_effect, 1e-9)
    )


def bench_single_scenario_re_rate_and_solve(benchmark, sweep_runner):
    """Per-scenario cost once the shared state space exists (the quantity that
    makes the 45-point sweep tractable)."""
    from repro.core.scenarios import DistributedScenario
    from repro.network import RIO_DE_JANEIRO, TOKYO

    scenario = DistributedScenario(
        RIO_DE_JANEIRO, TOKYO, alpha=0.40, disaster_mean_time_years=200.0
    )
    evaluation = benchmark.pedantic(
        sweep_runner.evaluate, args=(scenario,), rounds=1, iterations=1
    )
    assert 0.99 < evaluation.availability.availability < 1.0


def _quick_smoke() -> int:
    """Stand-alone smoke run used by CI: reduced config, one city pair.

    Exercises the whole stack — generation, vectorized re-rating, symbolic
    refill, factorisation reuse, parallel fan-out — and verifies the batch
    engine against the seed-style loop without needing pytest-benchmark.
    """
    from repro.casestudy import DistributedSweepRunner
    from repro.core import CaseStudyParameters

    runner = DistributedSweepRunner(
        parameters=CaseStudyParameters(required_running_vms=1),
        machines_per_datacenter=1,
    )
    scenarios = figure7_grid(city_pairs=(CITY_PAIRS[0],))
    graph = runner.graph()
    print(f"shared state space: {graph.number_of_states} tangible markings")

    started = time.perf_counter()
    seed_values = seed_style_loop(runner, scenarios)
    seed_seconds = time.perf_counter() - started

    started = time.perf_counter()
    sequential = runner.evaluate_many(scenarios)
    engine_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = runner.evaluate_many(scenarios, max_workers=4)
    parallel_seconds = time.perf_counter() - started

    worst_engine = max(
        abs(e.availability.availability - s) for e, s in zip(sequential, seed_values)
    )
    worst_parallel = max(
        abs(a.availability.availability - b.availability.availability)
        for a, b in zip(sequential, parallel)
    )
    print(
        f"seed-style loop : {seed_seconds:6.2f}s\n"
        f"engine batch    : {engine_seconds:6.2f}s ({seed_seconds / engine_seconds:.1f}x)\n"
        f"engine parallel : {parallel_seconds:6.2f}s\n"
        f"max |Δ| engine vs seed     : {worst_engine:.2e}\n"
        f"max |Δ| parallel vs serial : {worst_parallel:.2e}"
    )
    if worst_engine >= 1e-10:
        print("FAIL: engine deviates from the seed path")
        return 1
    if engine_seconds >= seed_seconds:
        print("FAIL: engine batch is not faster than the seed-style loop")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv:
        raise SystemExit(_quick_smoke())
    raise SystemExit(
        "run under pytest (pytest benchmarks/ --benchmark-only) or pass --quick"
    )
