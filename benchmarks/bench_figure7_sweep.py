"""Benchmark E2 — Figure 7: availability increase of distributed configurations.

Regenerates the Figure 7 sweep (α ∈ {0.35, 0.40, 0.45} × disaster mean time ∈
{100, 200, 300} years) for a subset of city pairs and checks the qualitative
claims of Section V: improvements are monotone in α and in the disaster mean
time, the best configuration is the closest pair with the fastest network and
the rarest disasters, and the disaster mean time matters most at short
distances while the network speed matters most at long distances.

The benchmark evaluates the nearest and the farthest pair (Brasília and
Tokyo); ``scripts/run_full_casestudy.py`` produces all five pairs.
"""

import pytest

from repro.casestudy import best_configuration, render_figure7, reproduce_figure7
from repro.core.scenarios import CITY_PAIRS

BENCH_PAIRS = (CITY_PAIRS[0], CITY_PAIRS[4])  # Rio-Brasilia and Rio-Tokyo


def bench_figure7_two_pairs(benchmark, sweep_runner):
    points = benchmark.pedantic(
        reproduce_figure7,
        kwargs={"runner": sweep_runner, "city_pairs": BENCH_PAIRS},
        rounds=1,
        iterations=1,
    )
    assert len(points) == 2 * 9
    print()
    print(render_figure7(points))

    by_pair = {}
    for point in points:
        by_pair.setdefault(point.city_pair, []).append(point)

    for pair_points in by_pair.values():
        baseline = [p for p in pair_points if p.is_baseline]
        assert len(baseline) == 1
        # Improvements are measured against the pair's own baseline and are
        # therefore non-negative across the swept grid.
        assert all(p.improvement_over_baseline >= -1e-9 for p in pair_points)
        # Monotonicity in alpha at fixed disaster mean time.
        for years in (100.0, 200.0, 300.0):
            series = sorted(
                (p for p in pair_points if p.disaster_mean_time_years == years),
                key=lambda p: p.alpha,
            )
            availabilities = [p.availability for p in series]
            assert availabilities == sorted(availabilities)
        # Monotonicity in disaster mean time at fixed alpha.
        for alpha in (0.35, 0.40, 0.45):
            series = sorted(
                (p for p in pair_points if p.alpha == alpha),
                key=lambda p: p.disaster_mean_time_years,
            )
            availabilities = [p.availability for p in series]
            assert availabilities == sorted(availabilities)

    # The best configuration overall combines the nearest pair, the fastest
    # network and the rarest disasters (the paper's headline conclusion).
    best = best_configuration(points)
    assert best.city_pair == "Rio de Janeiro - Brasilia"
    assert best.alpha == pytest.approx(0.45)
    assert best.disaster_mean_time_years == pytest.approx(300.0)

    # Relative influence: at short distance the disaster mean time dominates,
    # at long distance the network speed has comparatively more weight.
    near = by_pair["Rio de Janeiro - Brasilia"]
    far = by_pair["Rio de Janeiro - Tokyo"]

    def effect(points_of_pair, *, vary_alpha):
        baseline = next(p for p in points_of_pair if p.is_baseline)
        if vary_alpha:
            other = next(
                p for p in points_of_pair if p.alpha == 0.45 and p.disaster_mean_time_years == 100.0
            )
        else:
            other = next(
                p for p in points_of_pair if p.alpha == 0.35 and p.disaster_mean_time_years == 300.0
            )
        return other.nines - baseline.nines

    near_alpha_effect = effect(near, vary_alpha=True)
    near_disaster_effect = effect(near, vary_alpha=False)
    far_alpha_effect = effect(far, vary_alpha=True)
    far_disaster_effect = effect(far, vary_alpha=False)
    assert near_disaster_effect > near_alpha_effect
    assert (far_alpha_effect / max(far_disaster_effect, 1e-9)) > (
        near_alpha_effect / max(near_disaster_effect, 1e-9)
    )


def bench_single_scenario_re_rate_and_solve(benchmark, sweep_runner):
    """Per-scenario cost once the shared state space exists (the quantity that
    makes the 45-point sweep tractable)."""
    from repro.core.scenarios import DistributedScenario
    from repro.network import RIO_DE_JANEIRO, TOKYO

    scenario = DistributedScenario(
        RIO_DE_JANEIRO, TOKYO, alpha=0.40, disaster_mean_time_years=200.0
    )
    evaluation = benchmark.pedantic(
        sweep_runner.evaluate, args=(scenario,), rounds=1, iterations=1
    )
    assert 0.99 < evaluation.availability.availability < 1.0
