"""Benchmark E11 — availability-service overheads and recovery cost.

Three claims of the service layer (durable job store, admission queue,
checkpointed execution) are measured against an in-process
:class:`~repro.service.AvailabilityService` (no HTTP in the loop, so the
numbers isolate the store and scheduler, not socket juggling):

* **durable ack latency**: ``POST /v1/grids`` acknowledges only after the
  job record is journaled and fsync'd; the median submit→ack latency is
  the price of that guarantee (dominated by one ``fsync`` on the journal);
* **dedupe short-circuit**: resubmitting a grid already owned by an open
  or succeeded job answers from the digest index without touching the
  queue or the disk — it must be an order of magnitude cheaper than a
  fresh admission;
* **recovery replay**: restarting the service over a state directory with
  N settled jobs replays the journal/snapshot; startup must stay
  proportional to the journal, far below re-running anything.

Stand-alone full runs write ``BENCH_service.json`` next to the repo root;
``--quick`` runs a reduced job count as a CI smoke (no file written).
"""

import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.engine.dispatch import peak_rss_bytes
from repro.service import AvailabilityService, ServiceConfig

#: A dedupe answer never touches the journal; it must beat a durable
#: admission by at least this factor.
MIN_DEDUPE_SPEEDUP = 5.0

GRID = {"cities": [["Rio de Janeiro"]], "machines": [1]}


def machine_grid(machines: int) -> dict:
    """A distinct single-case grid per ``machines`` → distinct digest."""
    return {"cities": [["Rio de Janeiro"]], "machines": [machines]}


def make_service(state_dir: Path, depth: int) -> AvailabilityService:
    return AvailabilityService(
        ServiceConfig(state_dir=state_dir, queue_depth=depth)
    )


def timed_submit(service: AvailabilityService, grid: dict):
    started = time.perf_counter()
    status, body = service.submit({"grid": grid})
    return status, body, time.perf_counter() - started


def run(quick: bool = False) -> int:
    submissions = 8 if quick else 32
    print(f"jobs per phase: {submissions}")

    with tempfile.TemporaryDirectory(prefix="bench-service-") as scratch:
        state_dir = Path(scratch) / "state"

        # Phase 1: durable ack latency — submissions journal + fsync before
        # the 202 comes back.  No worker is running, so the measurement is
        # pure admission cost.
        service = make_service(state_dir, depth=submissions + 1)
        ack_latencies = []
        for machines in range(1, submissions + 1):
            status, _, seconds = timed_submit(service, machine_grid(machines))
            assert status == 202, f"admission refused with {status}"
            ack_latencies.append(seconds)
        ack_median = statistics.median(ack_latencies)
        print(
            f"durable submit→ack    : median {ack_median * 1e3:7.3f} ms "
            f"(p max {max(ack_latencies) * 1e3:.3f} ms, fsync'd journal)"
        )

        # Phase 2: dedupe short-circuit — same digests again, answered from
        # the in-memory index.
        dedupe_latencies = []
        for machines in range(1, submissions + 1):
            status, body, seconds = timed_submit(service, machine_grid(machines))
            assert status == 200 and body["deduplicated"] is True
            dedupe_latencies.append(seconds)
        dedupe_median = statistics.median(dedupe_latencies)
        speedup = ack_median / dedupe_median if dedupe_median else float("inf")
        print(
            f"dedupe resubmission   : median {dedupe_median * 1e3:7.3f} ms "
            f"({speedup:.1f}x cheaper than a durable admission)"
        )
        service.stop()

        # Phase 3: recovery replay — reopen the same state directory and
        # time the journal replay; every job must come back.
        started = time.perf_counter()
        revived = make_service(state_dir, depth=submissions + 1)
        recovery_seconds = time.perf_counter() - started
        payload = revived.health_payload()
        recovered = sum(payload["jobs"].values())
        assert recovered == submissions, (
            f"recovery lost jobs: {recovered} of {submissions}"
        )
        replayed = payload["recovery"]["replayed_transitions"]
        print(
            f"restart + replay      : {recovery_seconds * 1e3:7.3f} ms for "
            f"{recovered} job(s), {replayed} journaled transition(s)"
        )
        revived.stop()

    report = {
        "config": f"{'reduced' if quick else 'full'} ({submissions} jobs/phase)",
        "jobs": submissions,
        "submit_ack": {
            "median_ms": round(ack_median * 1e3, 3),
            "max_ms": round(max(ack_latencies) * 1e3, 3),
        },
        "dedupe": {
            "median_ms": round(dedupe_median * 1e3, 3),
            "speedup_vs_durable_ack": round(speedup, 2),
        },
        "recovery": {
            "ms": round(recovery_seconds * 1e3, 3),
            "jobs_recovered": recovered,
            "replayed_transitions": replayed,
        },
    }

    failures = []
    if speedup < MIN_DEDUPE_SPEEDUP:
        failures.append(
            f"dedupe answer only {speedup:.1f}x cheaper than a durable "
            f"admission (claimed ≥ {MIN_DEDUPE_SPEEDUP:.0f}x)"
        )
    if recovered != submissions:
        failures.append(
            f"recovery returned {recovered} job(s), submitted {submissions}"
        )

    if not quick:
        output = Path(__file__).resolve().parent.parent / "BENCH_service.json"
        report["peak_rss_bytes"] = peak_rss_bytes()
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


# --- pytest-benchmark entry points ----------------------------------------


def bench_durable_submission_ack(benchmark):
    """Median cost of one fsync'd job admission (no worker running)."""
    with tempfile.TemporaryDirectory(prefix="bench-service-") as scratch:
        service = make_service(Path(scratch) / "state", depth=10_000)
        counter = iter(range(1, 10_000))

        def admit():
            status, _, _ = timed_submit(service, machine_grid(next(counter)))
            assert status == 202

        benchmark(admit)
        service.stop()


if __name__ == "__main__":
    raise SystemExit(run(quick="--quick" in sys.argv))
