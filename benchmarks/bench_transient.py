"""Benchmark E8 — batched transient-availability workload.

Times the mission-window availability sweep (one scenario per VM start
time, point + interval availability over a mission-time grid) on the
batched uniformization path of ``ScenarioBatchEngine.run_transient`` —
shared state space, rate-regime grouping, block-diagonal sparse mat-vec per
Poisson term, rewards through the ``RewardMatrix`` GEMM — against the naive
seed-style loop (one full uniformization per scenario *per grid point* via
:func:`repro.markov.transient.transient_distribution`, re-assembling the
probability matrix every time).

Correctness: every batched point value must agree with the naive
uniformization reference below 1e-9 (the dense ``expm`` cross-check at
Δ < 1e-10 lives in the tier-1 tests, where the model is small enough for a
dense matrix exponential).

Run ``python benchmarks/bench_transient.py`` for the full measurement
(writes ``BENCH_transient.json``), ``--quick`` for the CI smoke, or under
pytest (``pytest benchmarks/ --benchmark-only``).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.casestudy import DistributedSweepRunner
from repro.casestudy.transient import mission_grid, vm_start_specs
from repro.core import CaseStudyParameters
from repro.engine.dispatch import effective_cpu_count, peak_rss_bytes
from repro.engine.measures import RewardMatrix
from repro.markov.transient import transient_distribution
from repro.spn.ctmc_export import generator_matrix

#: Agreement demanded between the batched path and the naive reference.
MAX_DELTA = 1e-9

FULL_MINUTES = (5.0, 15.0, 30.0, 60.0, 120.0)
FULL_WINDOW_HOURS = 24.0
FULL_POINTS = 9

QUICK_MINUTES = (5.0, 60.0)
QUICK_WINDOW_HOURS = 12.0
QUICK_POINTS = 4


def _reduced_runner() -> DistributedSweepRunner:
    return DistributedSweepRunner(
        parameters=CaseStudyParameters(required_running_vms=1),
        machines_per_datacenter=1,
    )


def _naive_point_curves(engine, specs, measure, times):
    """Seed-style reference: one uniformization per scenario per time point."""
    graph = engine.graph()
    reward = RewardMatrix.from_measures(graph, [measure])
    pi0 = engine.initial_vector()
    curves = []
    for spec in specs:
        re_rated = graph.with_rate_vector(
            engine.rate_matrix([spec])[0]
        )
        generator = generator_matrix(re_rated)
        curves.append(
            [
                float(
                    transient_distribution(generator, pi0, float(t), 1e-12)
                    @ reward.matrix[:, 0]
                )
                for t in times
            ]
        )
    return np.asarray(curves)


def run(quick: bool = False) -> int:
    runner = _reduced_runner()
    minutes = QUICK_MINUTES if quick else FULL_MINUTES
    times = mission_grid(
        QUICK_WINDOW_HOURS if quick else FULL_WINDOW_HOURS,
        QUICK_POINTS if quick else FULL_POINTS,
    )
    engine = runner.engine()
    specs = vm_start_specs(runner, minutes)
    measure = runner.availability_measure()
    engine.graph()  # one-off generation outside every timed section

    started = time.perf_counter()
    results = engine.run_transient(specs, [measure], times)
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    reference = _naive_point_curves(engine, specs, measure, times)
    naive_seconds = time.perf_counter() - started

    batched = np.asarray([r.point["availability"] for r in results])
    delta = float(np.max(np.abs(batched - reference)))
    interval_final = [float(r.interval["availability"][-1]) for r in results]

    report = {
        "config": "reduced (1 PM/DC)",
        "states": engine.number_of_states,
        "scenarios": len(specs),
        "grid_points": int(times.size),
        "window_hours": float(times[-1]),
        "batched_seconds": round(batched_seconds, 3),
        "naive_seconds": round(naive_seconds, 3),
        "speedup_vs_naive": round(naive_seconds / max(batched_seconds, 1e-9), 3),
        "max_point_delta_vs_naive": delta,
        "mission_interval_availability": dict(
            zip([f"{m:g}min" for m in minutes], interval_final)
        ),
        "backend": engine.last_run_backend,
        "effective_cores": effective_cpu_count(),
    }

    print(
        f"batched run_transient: {batched_seconds:7.2f}s   "
        f"naive per-(scenario,time) loop: {naive_seconds:7.2f}s   "
        f"({report['speedup_vs_naive']:5.2f}x, max |Δ| = {delta:.2e})"
    )
    for label, value in report["mission_interval_availability"].items():
        print(f"  VM start {label:>7s}: interval availability {value:.7f}")

    failures = []
    if delta >= MAX_DELTA:
        failures.append(
            f"batched path deviates from the uniformization reference by "
            f"{delta:.2e} (allowed {MAX_DELTA:.0e})"
        )
    ordering = list(report["mission_interval_availability"].values())
    if any(a < b for a, b in zip(ordering, ordering[1:])):
        failures.append(
            "mission interval availability must not improve with slower VM "
            f"starts, got {ordering}"
        )

    if not quick:
        output = Path(__file__).resolve().parent.parent / "BENCH_transient.json"
        report["peak_rss_bytes"] = peak_rss_bytes()
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


# --- pytest-benchmark entry points ----------------------------------------


def bench_transient_mission_sweep(benchmark):
    """Batched mission-window sweep on the reduced configuration."""
    runner = _reduced_runner()
    specs = vm_start_specs(runner, QUICK_MINUTES)
    times = mission_grid(QUICK_WINDOW_HOURS, QUICK_POINTS)
    engine = runner.engine()
    engine.graph()
    measure = runner.availability_measure()

    def sweep():
        return engine.run_transient(specs, [measure], times)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(results) == len(specs)
    for result in results:
        assert result.point["availability"][0] == 1.0


if __name__ == "__main__":
    import sys

    raise SystemExit(run(quick="--quick" in sys.argv))
