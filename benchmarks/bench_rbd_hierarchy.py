"""Benchmark E4 — the hierarchical RBD lower level (Figure 5).

Evaluates the OS_PM and NAS_NET reliability block diagrams with the Table VI
parameters and checks the equivalent MTTF/MTTR values that feed the SPN
level, plus the cost of the RBD evaluation itself (it is called for every
model instantiation, so it must stay cheap).
"""

import pytest

from repro.core import ComponentParameters, HierarchicalParameters
from repro.metrics import availability_from_mttf_mttr
from repro.rbd import evaluate, importance_analysis
from repro.core.hierarchical import build_nas_net_rbd, build_os_pm_rbd


def bench_hierarchical_parameters(benchmark):
    hierarchy = benchmark(HierarchicalParameters.from_components, ComponentParameters())
    # OS_PM: series of OS (4000 h, 1 h) and PM (1000 h, 12 h).
    assert hierarchy.os_pm.mttf == pytest.approx(800.0)
    assert availability_from_mttf_mttr(
        hierarchy.os_pm.mttf, hierarchy.os_pm.mttr
    ) == pytest.approx((4000.0 / 4001.0) * (1000.0 / 1012.0))
    # NAS_NET: dominated by the switch; equivalent availability above 0.99998.
    assert hierarchy.nas_net.availability > 0.99998


def bench_os_pm_importance(benchmark):
    rbd = build_os_pm_rbd(ComponentParameters())
    results = benchmark(importance_analysis, rbd)
    # The physical-machine hardware limits the availability of the pair.
    assert results[0].component == "PM"


def bench_nas_net_evaluation(benchmark):
    rbd = build_nas_net_rbd(ComponentParameters())
    result = benchmark(evaluate, rbd)
    assert result.mttf == pytest.approx(
        1.0 / (1 / 430000.0 + 1 / 14077473.0 + 1 / 20000000.0)
    )
