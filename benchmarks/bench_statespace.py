"""Benchmark E3 — state-space generation: incidence kernel vs scalar explorer.

Measures tangible-reachability-graph generation throughput (states/second)
of the vectorized incidence-matrix kernel
(:func:`repro.spn.generate_tangible_reachability_graph`) against the
retained scalar reference
(:func:`repro.spn.generate_tangible_reachability_graph_scalar`) on the
case-study nets:

* the reduced configuration (one PM per data center, ~3k tangible states),
* the faithful configuration (two PMs per data center with symmetry
  lumping, ~5.7 × 10⁴ tangible states).

Every measurement also verifies that the two explorers produce equivalent
graphs (same markings, edges and coefficients up to state reordering, with
deviation below 1e-12).  Stand-alone runs write the measurements to
``BENCH_statespace.json`` next to this file, seeding the perf trajectory.

Run ``python benchmarks/bench_statespace.py`` for the full measurement,
``--quick`` for the CI smoke (reduced configuration only, relaxed speedup
floor), or under pytest (``pytest benchmarks/ --benchmark-only``).
"""

import json
import time
from pathlib import Path

from repro.casestudy import DistributedSweepRunner
from repro.core import CaseStudyParameters
from repro.engine.dispatch import peak_rss_bytes
from repro.spn import (
    CompiledNet,
    generate_tangible_reachability_graph,
    generate_tangible_reachability_graph_scalar,
    graph_deviation,
)
from repro.symmetry import resolve_symmetry_reduction

#: Equivalence tolerance between the two explorers.
MAX_DEVIATION = 1e-12

#: Required kernel speedup at the full case-study configuration.
FULL_SPEEDUP_FLOOR = 5.0


def _reduced_runner() -> DistributedSweepRunner:
    return DistributedSweepRunner(
        parameters=CaseStudyParameters(required_running_vms=1),
        machines_per_datacenter=1,
        use_cache=False,
    )


def _case(name: str, runner: DistributedSweepRunner):
    model = runner.reference_model()
    net = CompiledNet(model.build())
    canonicalize = (
        model.symmetry_canonicalizer()
        if resolve_symmetry_reduction(runner.symmetry_reduction)
        else None
    )
    return name, net, canonicalize


def measure_case(name, net, canonicalize, repeats: int = 1) -> dict:
    """Time both explorers on one net, verify equivalence, report throughput."""
    net.kernel()  # exclude the one-off incidence-array build from the timings

    def timed(generate):
        best, graph = float("inf"), None
        for _ in range(repeats):
            started = time.perf_counter()
            graph = generate(net, canonicalize=canonicalize)
            best = min(best, time.perf_counter() - started)
        return best, graph

    scalar_seconds, scalar_graph = timed(generate_tangible_reachability_graph_scalar)
    kernel_seconds, kernel_graph = timed(generate_tangible_reachability_graph)
    deviation = graph_deviation(scalar_graph, kernel_graph)
    states = kernel_graph.number_of_states
    result = {
        "case": name,
        "states": states,
        "edges": kernel_graph.number_of_transitions,
        "scalar_seconds": round(scalar_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "scalar_states_per_second": round(states / scalar_seconds, 1),
        "kernel_states_per_second": round(states / kernel_seconds, 1),
        "speedup": round(scalar_seconds / kernel_seconds, 2),
        "max_deviation": deviation,
    }
    print(
        f"{name:24s} {states:7d} states | scalar {scalar_seconds:7.2f}s "
        f"({result['scalar_states_per_second']:9.0f} st/s) | kernel "
        f"{kernel_seconds:6.2f}s ({result['kernel_states_per_second']:9.0f} st/s) "
        f"| {result['speedup']:5.1f}x | dev {deviation:.2e}"
    )
    if deviation >= MAX_DEVIATION:
        raise AssertionError(
            f"{name}: kernel explorer deviates from the scalar reference "
            f"({deviation:.2e} >= {MAX_DEVIATION:.0e})"
        )
    return result


def run(quick: bool) -> int:
    cases = [_case("reduced (1 PM/DC)", _reduced_runner())]
    if not quick:
        cases.append(_case("full (2 PM/DC, lumped)", DistributedSweepRunner(use_cache=False)))

    # Best-of-2 on both explorers so one scheduling hiccup cannot skew the
    # ratio; the full scalar pass dominates the benchmark's runtime.
    results = [
        measure_case(name, net, canonicalize, repeats=2)
        for name, net, canonicalize in cases
    ]

    output = Path(__file__).resolve().parent.parent / "BENCH_statespace.json"
    output.write_text(
        json.dumps(
            {"results": results, "peak_rss_bytes": peak_rss_bytes()}, indent=2
        )
        + "\n"
    )
    print(f"wrote {output}")

    for result in results:
        # The quick (CI) case is small enough that constant overheads eat
        # into the win; the kernel only has to beat the scalar explorer
        # there, while the full configuration must hit the 5x floor.
        floor = 1.0 if result["states"] < 10_000 else FULL_SPEEDUP_FLOOR
        if result["speedup"] < floor:
            print(
                f"FAIL: {result['case']} speedup {result['speedup']}x "
                f"is below the {floor}x floor"
            )
            return 1
    print("OK")
    return 0


# --- pytest-benchmark entry points ------------------------------------------


def bench_kernel_generation_reduced(benchmark):
    name, net, canonicalize = _case("reduced (1 PM/DC)", _reduced_runner())
    net.kernel()
    graph = benchmark.pedantic(
        generate_tangible_reachability_graph,
        args=(net,),
        kwargs={"canonicalize": canonicalize},
        rounds=3,
        iterations=1,
    )
    assert graph.number_of_states > 1000


def bench_kernel_vs_scalar_full(benchmark, sweep_runner):
    """Acceptance benchmark: ≥5x at the full case-study configuration."""
    from benchmarks.conftest import full_scale

    name = "full" if full_scale() else "reduced"
    model = sweep_runner.reference_model()
    net = CompiledNet(model.build())
    canonicalize = (
        model.symmetry_canonicalizer()
        if resolve_symmetry_reduction(sweep_runner.symmetry_reduction)
        else None
    )
    net.kernel()

    started = time.perf_counter()
    scalar_graph = generate_tangible_reachability_graph_scalar(
        net, canonicalize=canonicalize
    )
    scalar_seconds = time.perf_counter() - started

    kernel_graph = benchmark.pedantic(
        generate_tangible_reachability_graph,
        args=(net,),
        kwargs={"canonicalize": canonicalize},
        rounds=1,
        iterations=1,
    )
    kernel_seconds = benchmark.stats.stats.min
    deviation = graph_deviation(scalar_graph, kernel_graph)
    speedup = scalar_seconds / kernel_seconds
    print()
    print(
        f"[{name}] scalar {scalar_seconds:.2f}s, kernel {kernel_seconds:.2f}s "
        f"({speedup:.1f}x), dev {deviation:.2e}"
    )
    assert deviation < MAX_DEVIATION
    if full_scale():
        assert speedup >= FULL_SPEEDUP_FLOOR


if __name__ == "__main__":
    import sys

    raise SystemExit(run(quick="--quick" in sys.argv))
