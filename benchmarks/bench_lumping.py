"""Benchmark — exact symmetry lumping: unlumped vs PM-lumped vs DC+PM-lumped.

Solves homogeneous N-data-center meshes (capacity-aware migration, one VM
per machine, ``k = 1``) at three lumping levels:

* **unlumped** — no canonicalizer, the full tangible state space;
* **pm** — PM-exchange orbits within each data center
  (``symmetry_spec(dc_exchange=False)``);
* **dc+pm** — whole-data-center exchange on top
  (:meth:`~repro.core.cloud_model.CloudSystemModel.symmetry_spec`).

For every configuration and level the benchmark records states, generation
and solve seconds, availability and expected running VMs, and **asserts**
agreement on both measures — the lumping is exact, only the state count
changes.  Pairs of chains small enough for the exact direct/GTH solvers
must agree to < 1e-12; pairs involving a chain above the automatic
iterative-solver threshold get a relaxed 1e-9 bound, because the residual
of the converged GMRES solve (rtol 1e-12) then dominates the comparison,
not the lumping.  At N = 3 the DC+PM chain must be ≥ 4x smaller than the
PM-only chain, and the N = 5 mesh must solve within the
``max_states = 500_000`` exploration limit (its DC+PM chain is ~50x
smaller than the unlumped one).

Stand-alone runs write ``BENCH_lumping.json`` next to the repo root.  Run
``python benchmarks/bench_lumping.py`` for the full measurement (N = 2, 3
and 5; the N = 3 unlumped solve dominates, and the 200k-state N = 5
unlumped row is generation-only) or ``--quick`` for the CI smoke
(three-way delta check at N = 2; the N = 3 shrink ratio by generation
only, solving just the small DC+PM chain).
"""

import itertools
import json
import time
from pathlib import Path

from repro.core.cloud_model import solve_steady_state
from repro.engine.dispatch import peak_rss_bytes
from repro.core.parameters import CaseStudyParameters
from repro.core.scenarios import homogeneous_mesh_scenario
from repro.core.vm_behavior import vm_up_place
from repro.spn.reachability import generate_tangible_reachability_graph
from repro.symmetry import build_canonicalizer

#: Agreement tolerance between lumping levels (per measure) when both
#: chains are small enough for the exact direct/GTH solvers.
MAX_DELTA = 1e-12

#: ``solvers.steady_state(method="auto")`` switches to ILU-preconditioned
#: GMRES above this many states; agreement across solver families is then
#: bounded by the iterative convergence tolerance, not by the lumping
#: (which stays exact), so those pairs get a relaxed bound.
DIRECT_SOLVER_LIMIT = 20_000
ITERATIVE_DELTA = 1e-9

#: Required DC+PM shrink over PM-only at the N = 3 mesh.
N3_SHRINK_FLOOR = 4.0

#: Exploration limit every configuration must respect (the acceptance bar
#: for the N = 5 mesh).
MAX_STATES = 500_000

#: One VM per machine, availability threshold k = 1.
PARAMETERS = CaseStudyParameters(
    required_running_vms=1, vms_per_physical_machine=1
)

LEVELS = ("unlumped", "pm", "dc+pm")


def mesh_model(datacenters: int, machines: int):
    scenario = homogeneous_mesh_scenario(
        datacenters,
        machines_per_datacenter=machines,
        capacity_aware_migration=True,
    )
    return scenario.build_model(PARAMETERS)


def canonicalizer_for(model, level: str):
    if level == "unlumped":
        return None
    spec = model.symmetry_spec(dc_exchange=(level == "dc+pm"))
    if level == "dc+pm" and (spec is None or spec.kind != "dc+pm"):
        raise AssertionError(
            "homogeneous mesh was not detected as DC-exchangeable"
        )
    return build_canonicalizer(spec) if spec is not None else None


def solve_level(model, level: str, solve: bool = True) -> dict:
    canonicalize = canonicalizer_for(model, level)
    started = time.perf_counter()
    graph = generate_tangible_reachability_graph(
        model.build(), max_states=MAX_STATES, canonicalize=canonicalize
    )
    generate_seconds = time.perf_counter() - started
    row = {
        "level": level,
        "lumped": canonicalize is not None,
        "group_order": getattr(canonicalize, "group_order", 1),
        "states": graph.number_of_states,
        "generate_seconds": round(generate_seconds, 4),
        "solve_seconds": None,
        "availability": None,
        "expected_vms": None,
    }
    if not solve:
        return row
    started = time.perf_counter()
    solution = solve_steady_state(graph)
    row["solve_seconds"] = round(time.perf_counter() - started, 4)
    total_vms = " + ".join(
        f"#{vm_up_place(machine.index)}"
        for machine in model.spec.physical_machines
    )
    row["availability"] = solution.probability(model.availability_expression())
    row["expected_vms"] = solution.expected_tokens(f"({total_vms})")
    return row


def measure_configuration(datacenters: int, machines: int, levels, solve=()) -> dict:
    model = mesh_model(datacenters, machines)
    rows = []
    for level in levels:
        row = solve_level(model, level, solve=not solve or level in solve)
        rows.append(row)
        solved = row["availability"] is not None
        print(
            f"N={datacenters} machines={machines} {level:8s} "
            f"{row['states']:7d} states | gen {row['generate_seconds']:7.2f}s | "
            + (
                f"solve {row['solve_seconds']:7.2f}s | A={row['availability']:.12f}"
                if solved
                else "generation only"
            )
        )
    solved_rows = [row for row in rows if row["availability"] is not None]
    deltas = []
    for reference, row in itertools.combinations(solved_rows, 2):
        exact_pair = max(row["states"], reference["states"]) <= DIRECT_SOLVER_LIMIT
        bound = MAX_DELTA if exact_pair else ITERATIVE_DELTA
        for measure in ("availability", "expected_vms"):
            delta = abs(row[measure] - reference[measure])
            deltas.append(delta)
            if delta >= bound:
                raise AssertionError(
                    f"N={datacenters} {row['level']} {measure} deviates from "
                    f"{reference['level']} by {delta:.2e} (>= {bound:.0e})"
                )
    return {
        "datacenters": datacenters,
        "machines_per_datacenter": machines,
        "max_states": MAX_STATES,
        "levels": rows,
        "max_delta": max(deltas) if deltas else 0.0,
    }


def run(quick: bool) -> int:
    configurations = [
        # (N, machines/DC, levels, levels-to-solve): quick is the CI smoke —
        # it keeps the three-way delta check at N = 2, measures the N = 3
        # shrink by generation only (the 13k-state PM solve alone takes
        # minutes), and skips N = 5 entirely.
        (2, 2, LEVELS, ()),
        (3, 2, ("pm", "dc+pm"), ("dc+pm",)) if quick else (3, 2, LEVELS, ()),
    ]
    if not quick:
        # One machine per DC: no PM orbits, so "pm" degenerates to the
        # unlumped chain; the interesting comparison is unlumped vs dc+pm.
        # The unlumped row is generation-only — the point is that the
        # 200k-state chain fits the exploration budget while only the
        # ~4k-state lumped quotient needs solving.
        configurations.append((5, 1, ("unlumped", "dc+pm"), ("dc+pm",)))

    results = [
        measure_configuration(datacenters, machines, levels, solve)
        for datacenters, machines, levels, solve in configurations
    ]

    output = Path(__file__).resolve().parent.parent / "BENCH_lumping.json"
    output.write_text(
        json.dumps(
            {"results": results, "peak_rss_bytes": peak_rss_bytes()}, indent=2
        )
        + "\n"
    )
    print(f"wrote {output}")

    by_n = {entry["datacenters"]: entry for entry in results}
    n3 = {row["level"]: row for row in by_n[3]["levels"]}
    shrink = n3["pm"]["states"] / n3["dc+pm"]["states"]
    print(f"N=3 DC+PM shrink over PM-only: {shrink:.2f}x")
    if shrink < N3_SHRINK_FLOOR:
        print(f"FAIL: below the {N3_SHRINK_FLOOR}x floor")
        return 1
    if not quick:
        n5 = {row["level"]: row for row in by_n[5]["levels"]}
        if any(row["states"] > MAX_STATES for row in n5.values()):
            print(f"FAIL: N=5 exceeded the {MAX_STATES} state limit")
            return 1
        print(
            f"N=5 mesh solved within the limit: "
            f"{n5['unlumped']['states']} states unlumped, "
            f"{n5['dc+pm']['states']} lumped "
            f"({n5['unlumped']['states'] / n5['dc+pm']['states']:.1f}x)"
        )
    print("OK")
    return 0


if __name__ == "__main__":
    import sys

    raise SystemExit(run(quick="--quick" in sys.argv))
