"""Benchmark E8 — scenario-grid orchestration vs naive per-structure serial.

Evaluates a mixed-structure grid the way the paper's case study actually
mixes scenarios — single-site baselines with several machine counts,
two-data-center deployments with 1 or 2 PMs per data center, backup on/off
ablations, several (city pair, α, disaster mean time) rate points each —
two ways:

* **naive**: the pre-orchestrator workflow.  Each structure group is
  evaluated on its own: generate the tangible reachability graph (cold, no
  cache), then solve the group's scenarios as one *serial* engine batch.
  Structures run strictly one after another — this is exactly what a script
  around PRs 1–4 could do without the orchestrator;
* **orchestrated**: one :class:`repro.engine.grid.ScenarioGridOrchestrator`
  call over the whole grid — structure grouping by rateless fingerprint,
  concurrent TRG generation on the persistent process pool, cost-aware
  per-group batch dispatch, one merged result frame.

Every orchestrated availability must match its naive counterpart below
1e-12.  The ≥ 2x orchestration speedup target is asserted on machines with
at least 4 effective cores (concurrent generation and parallel batch solves
need physical cores); on smaller machines the measured ratio is recorded
honestly and the target marked unreachable.  A separate section solves an
N=3 full-mesh data-center scenario end-to-end through the orchestrator —
the first deployment shape beyond the paper's two-data-center limit.

Stand-alone full runs write ``BENCH_grid.json`` next to the repo root;
``--quick`` runs a reduced grid as the CI smoke (no file written).
"""

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.casestudy.grid import CaseStudyGrid, scenario_case
from repro.core import CaseStudyParameters
from repro.core.scenarios import CITY_PAIRS, MultiDataCenterScenario
from repro.engine import ScenarioBatchEngine, ScenarioSpec, TRGCache
from repro.engine.dispatch import effective_cpu_count, peak_rss_bytes
from repro.engine.grid import ScenarioGridOrchestrator
from repro.network.geo import BRASILIA, RECIFE, RIO_DE_JANEIRO

#: Agreement demanded between orchestrated and naive availabilities.
MAX_DELTA = 1e-12

#: Required orchestration speedup on machines with >= MIN_CORES cores.
SPEEDUP_FLOOR = 2.0
MIN_CORES = 4

REDUCED = CaseStudyParameters(required_running_vms=1)


def full_grid() -> CaseStudyGrid:
    """~40 scenarios over 7 structures (machines x backup x single sites)."""
    return CaseStudyGrid(
        city_sets=(CITY_PAIRS[0], CITY_PAIRS[4], (RIO_DE_JANEIRO,)),
        alphas=(0.35, 0.45),
        disaster_years=(100.0, 300.0),
        machines_per_datacenter=(1, 2),
        backup=(True, False),
    )


def quick_grid() -> CaseStudyGrid:
    """Reduced CI smoke: 5 scenarios over 3 structures."""
    return CaseStudyGrid(
        city_sets=(CITY_PAIRS[0], (RIO_DE_JANEIRO,)),
        alphas=(0.35, 0.45),
        disaster_years=(100.0,),
        machines_per_datacenter=(1,),
        backup=(True, False),
    )


def grid_cases(grid: CaseStudyGrid):
    return [scenario_case(s, parameters=REDUCED) for s in grid.scenarios()]


def naive_per_structure_serial(cases):
    """The pre-orchestrator baseline: one cold engine per structure, serial.

    Structures are grouped exactly as the orchestrator would group them (so
    the comparison is about *scheduling*, not about how many graphs exist),
    but everything runs serially and cold: no cache, no concurrent
    generation, no cost-aware backend, one structure after another.
    """
    keyer = ScenarioGridOrchestrator()
    from repro.spn.enabling import CompiledNet

    groups: dict[str, list] = {}
    for case in cases:
        canonical_id = (
            case.canonicalizer.build().cache_id if case.canonicalizer else None
        )
        groups.setdefault(
            keyer.group_key(CompiledNet(case.net), canonical_id), []
        ).append(case)

    started = time.perf_counter()
    availabilities: dict[str, float] = {}
    for group_cases in groups.values():
        representative = group_cases[0]
        engine = ScenarioBatchEngine(
            representative.net,
            canonicalize=(
                representative.canonicalizer.build()
                if representative.canonicalizer
                else None
            ),
        )
        results = engine.run(
            [
                ScenarioSpec(name=case.name, rates=case.full_rates())
                for case in group_cases
            ],
            list(representative.measures),
            backend="serial",
        )
        for case, result in zip(group_cases, results):
            availabilities[case.name] = result.measures["availability"]
    return availabilities, time.perf_counter() - started, len(groups)


def orchestrated(cases, workers):
    """One cold orchestrator pass (fresh throwaway cache directory)."""
    with tempfile.TemporaryDirectory(prefix="bench-grid-") as scratch:
        orchestrator = ScenarioGridOrchestrator(
            cache=TRGCache(scratch),
            jobs=workers if workers > 1 else None,
            backend="auto",
            generation_workers=workers,
        )
        started = time.perf_counter()
        outcome = orchestrator.run(cases)
        seconds = time.perf_counter() - started
    return outcome, seconds


def solve_n3_end_to_end():
    """An N=3 full-mesh deployment through the orchestrator, end to end."""
    scenario = MultiDataCenterScenario(
        locations=(RIO_DE_JANEIRO, BRASILIA, RECIFE),
        machines_per_datacenter=1,
        has_backup_server=False,
    )
    case = scenario_case(scenario, parameters=REDUCED)
    started = time.perf_counter()
    outcome = ScenarioGridOrchestrator().run([case])
    seconds = time.perf_counter() - started
    row = outcome.results[0]
    return {
        "label": scenario.label,
        "topology": "mesh",
        "datacenters": 3,
        "number_of_states": row.number_of_states,
        "availability": row.value("availability"),
        "seconds": round(seconds, 3),
    }


def run(quick: bool = False) -> int:
    cores = effective_cpu_count()
    workers = max(1, min(MIN_CORES, cores))
    grid = quick_grid() if quick else full_grid()
    cases = grid_cases(grid)
    print(f"grid: {len(cases)} scenario(s), {cores} effective core(s)")

    reference, naive_seconds, structures = naive_per_structure_serial(cases)
    print(f"naive per-structure serial : {naive_seconds:7.2f}s ({structures} structures)")

    outcome, orchestrated_seconds = orchestrated(cases, workers)
    speedup = naive_seconds / orchestrated_seconds
    print(
        f"orchestrated grid          : {orchestrated_seconds:7.2f}s "
        f"({speedup:.2f}x vs naive)"
    )

    max_delta = max(
        abs(row.value("availability") - reference[row.name])
        for row in outcome.results
    )
    print(f"max |Δavailability| = {max_delta:.2e}")

    report = {
        "config": (
            f"{'reduced' if quick else 'full'} mixed-structure grid "
            f"({len(cases)} scenarios, {len(outcome.groups)} structures)"
        ),
        "scenarios": len(cases),
        "structures": len(outcome.groups),
        "effective_cores": cores,
        "workers": workers,
        "naive_seconds": round(naive_seconds, 3),
        "orchestrated_seconds": round(orchestrated_seconds, 3),
        "speedup_vs_naive": round(speedup, 3),
        "max_delta": max_delta,
        "groups": [
            {
                "key": group.key,
                "cases": group.cases,
                "states": group.number_of_states,
                "graph_source": group.graph_source,
                "backend": group.backend,
                "generate_seconds": round(group.generate_seconds, 3),
                "solve_seconds": round(group.solve_seconds, 3),
                "deduped_cases": group.deduped_cases,
                "timeline": group.timeline(),
            }
            for group in outcome.groups
        ],
        "pipelined": outcome.pipelined,
        "deduped_cases": outcome.deduped_cases,
        "speedup_target": {
            "required": SPEEDUP_FLOOR,
            "measured": round(speedup, 3),
            "met": speedup >= SPEEDUP_FLOOR,
        },
    }
    if cores < MIN_CORES:
        report["speedup_target"]["note"] = (
            f"machine exposes {cores} effective core(s); concurrent generation "
            f"and parallel batch solves cannot overlap, so the "
            f">= {SPEEDUP_FLOOR}x target is only asserted on "
            f">= {MIN_CORES}-effective-core machines and the ratio above is "
            f"recorded as measured"
        )

    failures = []
    if max_delta >= MAX_DELTA:
        failures.append(
            f"orchestrated grid deviates from naive serial by {max_delta:.2e} "
            f"(allowed {MAX_DELTA:.0e})"
        )

    if not quick:
        n3 = solve_n3_end_to_end()
        report["n3_end_to_end"] = n3
        print(
            f"N=3 mesh end-to-end        : {n3['seconds']:7.2f}s "
            f"({n3['number_of_states']} states, "
            f"availability {n3['availability']:.7f})"
        )
        if not 0.0 < n3["availability"] <= 1.0:
            failures.append(f"N=3 availability out of range: {n3['availability']}")
        if cores >= MIN_CORES and not report["speedup_target"]["met"]:
            failures.append(
                f"orchestration reached only {speedup:.2f}x over naive serial "
                f"(required {SPEEDUP_FLOOR}x on a {cores}-effective-core machine)"
            )
        output = Path(__file__).resolve().parent.parent / "BENCH_grid.json"
        report["peak_rss_bytes"] = peak_rss_bytes()
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


# --- pytest-benchmark entry points ----------------------------------------


def bench_orchestrated_grid_matches_naive_serial(benchmark):
    """Reduced mixed grid through the orchestrator; agreement vs naive."""
    cases = grid_cases(quick_grid())
    reference, _, _ = naive_per_structure_serial(cases)

    def orchestrate():
        outcome, _ = orchestrated(cases, max(1, min(MIN_CORES, effective_cpu_count())))
        return outcome

    outcome = benchmark.pedantic(orchestrate, rounds=1, iterations=1)
    worst = max(
        abs(row.value("availability") - reference[row.name])
        for row in outcome.results
    )
    assert worst < MAX_DELTA


if __name__ == "__main__":
    raise SystemExit(run(quick="--quick" in sys.argv))
