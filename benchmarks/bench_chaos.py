"""Benchmark E10 — self-healing grid execution under injected faults.

Two claims of the robustness layer (fault harness, retries, pool rebuilds,
checkpoint/resume) are measured on the same mixed-structure grid as the
pipeline benchmark:

* **chaos agreement**: a grid run under an adversarial fault plan — a pool
  worker SIGKILLed mid-generation, a poisoned generation task, and two
  corrupted cache reads — must complete WITHOUT quarantining anything and
  agree with the fault-free reference below 1e-12 on every availability,
  with the recovery visible in provenance (``pool_rebuilds``, fault-plan
  firing counts);
* **kill + resume**: a checkpointed run is "killed" by deleting the
  trailing half of its shards (exactly what a SIGKILL mid-run leaves
  behind: whole shards only, because the writer renames atomically); the
  ``resume`` run must restore every surviving case from the checkpoint
  (``solve_source == "checkpoint"``, bit-identical to the killed run) and
  re-dispatch exactly the missing ones.  Re-solved rows enter a partially
  restored group's warm-start chain at a different point than a full run,
  so they agree with the reference to solver tolerance (1e-9) rather than
  bit-identically.

Stand-alone full runs write ``BENCH_chaos.json`` next to the repo root;
``--quick`` runs a reduced grid as the CI chaos smoke (no file written).
"""

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.casestudy.grid import CaseStudyGrid, scenario_case
from repro.core import CaseStudyParameters
from repro.core.scenarios import CITY_PAIRS
from repro.engine import TRGCache
from repro.engine import faults
from repro.engine.dispatch import effective_cpu_count, peak_rss_bytes
from repro.engine.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.engine.grid import ScenarioGridOrchestrator
from repro.engine.parallel import shutdown_shared_pool
from repro.network.geo import RIO_DE_JANEIRO

#: Agreement demanded between the chaos run and the fault-free run.
MAX_DELTA = 1e-12

#: Re-solved rows of a resumed run start the GMRES warm-start chain at a
#: different scenario than the full run did, so they only agree to the
#: Krylov convergence tolerance; restored rows stay bit-identical.
RESUME_DELTA = 1e-9

REDUCED = CaseStudyParameters(required_running_vms=1)

#: Tight backoffs: the benchmark measures recovery, not sleeping.
RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.05, max_backoff_seconds=0.5)


def full_grid() -> CaseStudyGrid:
    """~36 scenarios over 9 structures (machines x backup x single site)."""
    return CaseStudyGrid(
        city_sets=(CITY_PAIRS[0], CITY_PAIRS[4], (RIO_DE_JANEIRO,)),
        alphas=(0.35, 0.45),
        disaster_years=(100.0, 300.0),
        machines_per_datacenter=(1, 2),
        backup=(True, False),
    )


def quick_grid() -> CaseStudyGrid:
    """Reduced CI smoke: 5 scenarios over 3 structures."""
    return CaseStudyGrid(
        city_sets=(CITY_PAIRS[0], (RIO_DE_JANEIRO,)),
        alphas=(0.35, 0.45),
        disaster_years=(100.0,),
        machines_per_datacenter=(1,),
        backup=(True, False),
    )


def grid_cases(grid: CaseStudyGrid):
    return [scenario_case(s, parameters=REDUCED) for s in grid.scenarios()]


def chaos_plan() -> FaultPlan:
    """The benchmark's adversarial schedule (deterministic, seeded)."""
    return FaultPlan(
        [
            FaultSpec(kind=faults.WORKER_KILL, site="generate", count=1),
            FaultSpec(kind=faults.TASK_EXCEPTION, site="generate", count=1),
            FaultSpec(kind=faults.CORRUPT_CACHE_READ, site="cache.load", count=2),
        ],
        seed=7,
    )


def run_grid(cases, *, workers, plan=None, shard_directory=None, resume=False):
    """One cold orchestrator pass (fresh cache, reset pool, optional plan)."""
    shutdown_shared_pool()
    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as scratch:
        orchestrator = ScenarioGridOrchestrator(
            cache=TRGCache(scratch),
            jobs=workers if workers > 1 else None,
            backend="auto",
            generation_workers=workers,
            retry=RETRY,
            shard_directory=shard_directory,
            shard_size=1,
            resume=resume,
        )
        started = time.perf_counter()
        if plan is not None:
            with faults.injected(plan):
                outcome = orchestrator.run(cases)
        else:
            outcome = orchestrator.run(cases)
        seconds = time.perf_counter() - started
    return outcome, seconds


def max_availability_delta(a, b) -> float:
    by_name = {row.name: row for row in b.results}
    return max(
        abs(row.value("availability") - by_name[row.name].value("availability"))
        for row in a.results
    )


def run(quick: bool = False) -> int:
    cores = effective_cpu_count()
    workers = max(2, min(4, cores))
    grid = quick_grid() if quick else full_grid()
    cases = grid_cases(grid)
    print(f"grid: {len(cases)} scenario(s), {cores} effective core(s)")

    reference, reference_seconds = run_grid(cases, workers=workers)
    assert not reference.partial
    print(f"fault-free reference  : {reference_seconds:7.2f}s")

    plan = chaos_plan()
    chaos, chaos_seconds = run_grid(cases, workers=workers, plan=plan)
    fired = {
        kind: plan.fired(kind)
        for kind in (
            faults.WORKER_KILL,
            faults.TASK_EXCEPTION,
            faults.CORRUPT_CACHE_READ,
        )
    }
    chaos_delta = max_availability_delta(chaos, reference)
    overhead = chaos_seconds / reference_seconds if reference_seconds else 1.0
    print(
        f"chaos run             : {chaos_seconds:7.2f}s ({overhead:.2f}x "
        f"reference; {chaos.pool_rebuilds} pool rebuild(s), faults fired: "
        f"{fired})"
    )
    print(f"max |Δavailability| (chaos) = {chaos_delta:.2e}")

    # Kill-and-resume: delete the trailing half of the checkpoint shards,
    # exactly what a SIGKILL mid-run leaves behind (whole shards only).
    with tempfile.TemporaryDirectory(prefix="bench-chaos-ckpt-") as checkpoint:
        checkpoint = Path(checkpoint)
        first, first_seconds = run_grid(
            cases, workers=workers, shard_directory=checkpoint
        )
        assert not first.partial
        shards = sorted(checkpoint.glob("grid-shard-*.jsonl"))
        for shard in shards[len(shards) // 2 :]:
            shard.unlink()
        survivors = len(shards) // 2
        resumed, resume_seconds = run_grid(
            cases, workers=workers, shard_directory=checkpoint, resume=True
        )
        assert not resumed.partial
        restored = sum(
            1 for row in resumed.results if row.solve_source == "checkpoint"
        )
        resolved = len(resumed.results) - restored
        resume_delta = max_availability_delta(resumed, reference)
        first_by_name = {row.name: row for row in first.results}
        restored_delta = max(
            abs(
                row.value("availability")
                - first_by_name[row.name].value("availability")
            )
            for row in resumed.results
            if row.solve_source == "checkpoint"
        )
        print(
            f"killed-then-resumed   : {resume_seconds:7.2f}s "
            f"({restored} restored, {resolved} re-solved of "
            f"{len(cases)}; full run took {first_seconds:7.2f}s)"
        )
        print(f"max |Δavailability| (resume) = {resume_delta:.2e}")

    report = {
        "config": (
            f"{'reduced' if quick else 'full'} mixed-structure grid "
            f"({len(cases)} scenarios, {len(reference.groups)} structures)"
        ),
        "scenarios": len(cases),
        "structures": len(reference.groups),
        "effective_cores": cores,
        "workers": workers,
        "reference_seconds": round(reference_seconds, 3),
        "chaos": {
            "seconds": round(chaos_seconds, 3),
            "overhead_vs_reference": round(overhead, 3),
            "pool_rebuilds": chaos.pool_rebuilds,
            "watchdog_kills": chaos.watchdog_kills,
            "faults_fired": fired,
            "quarantined_cases": len(chaos.failed_cases()),
            "max_delta": chaos_delta,
        },
        "resume": {
            "full_seconds": round(first_seconds, 3),
            "resume_seconds": round(resume_seconds, 3),
            "shards_surviving_the_kill": survivors,
            "restored_cases": restored,
            "resolved_cases": resolved,
            "restored_via_provenance": resumed.restored_cases,
            "max_delta": resume_delta,
            "max_delta_restored_vs_killed_run": restored_delta,
        },
    }

    failures = []
    if chaos.partial:
        failures.append(
            f"chaos run quarantined {len(chaos.failed_cases())} case(s); the "
            f"plan is survivable and none were expected"
        )
    if chaos_delta >= MAX_DELTA:
        failures.append(
            f"chaos run deviates from the reference by {chaos_delta:.2e} "
            f"(allowed {MAX_DELTA:.0e})"
        )
    if chaos.pool_rebuilds < 1:
        failures.append(
            "the worker kill left no rebuild in provenance (pool_rebuilds == 0)"
        )
    if fired[faults.WORKER_KILL] != 1 or fired[faults.CORRUPT_CACHE_READ] != 2:
        failures.append(f"fault plan under-fired: {fired}")
    if resume_delta >= RESUME_DELTA:
        failures.append(
            f"resumed run deviates from the reference by {resume_delta:.2e} "
            f"(allowed {RESUME_DELTA:.0e})"
        )
    if restored_delta != 0.0:
        failures.append(
            f"checkpoint restore is not bit-identical to the killed run "
            f"(max delta {restored_delta:.2e})"
        )
    if restored != survivors:
        failures.append(
            f"resume restored {restored} case(s) but {survivors} shard(s) "
            f"survived the kill"
        )
    if resolved != len(cases) - survivors:
        failures.append(
            f"resume re-solved {resolved} case(s), expected exactly the "
            f"{len(cases) - survivors} missing one(s)"
        )

    if not quick:
        output = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"
        report["peak_rss_bytes"] = peak_rss_bytes()
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


# --- pytest-benchmark entry points ----------------------------------------


def bench_chaos_matches_reference(benchmark):
    """Reduced grid under the chaos plan; agreement vs the fault-free run."""
    cases = grid_cases(quick_grid())
    workers = max(2, min(4, effective_cpu_count()))
    reference, _ = run_grid(cases, workers=workers)

    def chaos_run():
        outcome, _ = run_grid(cases, workers=workers, plan=chaos_plan())
        return outcome

    outcome = benchmark.pedantic(chaos_run, rounds=1, iterations=1)
    assert not outcome.partial
    assert max_availability_delta(outcome, reference) < MAX_DELTA


if __name__ == "__main__":
    raise SystemExit(run(quick="--quick" in sys.argv))
