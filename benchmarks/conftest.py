"""Shared fixtures for the benchmark suite.

By default the distributed benchmarks use the faithful case-study
configuration (two PMs per data center, k = 2); its lumped CTMC has
~5.7 × 10^4 states, the shared state space is generated once per session and
each scenario re-uses the ILU preconditioner and the previous solution, so
``pytest benchmarks/ --benchmark-only`` finishes in roughly ten minutes.  Set
``REPRO_BENCH_FULL=0`` to fall back to a reduced configuration (one PM per
data center, k = 1) that finishes in about a minute.
"""

import os

import pytest

from repro.casestudy import DistributedSweepRunner
from repro.core import CaseStudyParameters


def full_scale() -> bool:
    """Whether the faithful case-study configuration should be used."""
    return os.environ.get("REPRO_BENCH_FULL", "1") not in ("", "0", "false", "no")


@pytest.fixture(scope="session")
def sweep_runner() -> DistributedSweepRunner:
    """Shared sweep runner (the reachability graph is generated once per session)."""
    if full_scale():
        runner = DistributedSweepRunner()
    else:
        runner = DistributedSweepRunner(
            parameters=CaseStudyParameters(required_running_vms=1),
            machines_per_datacenter=1,
        )
    # Force the one-off state-space generation outside of the timed sections.
    runner.graph()
    return runner
