"""Benchmark E9 — work-stealing generate→solve pipeline + cross-case dedupe.

Two claims of the pipelined grid orchestrator are measured against the
two-phase barrier path on the same cold grid (fresh throwaway cache both
times, persistent process pool shut down between the phases so neither run
inherits the other's warm workers):

* **pipeline**: on the ~36-scenario mixed-structure grid, overlapping
  structure-graph generation with per-group solving must reach ≥ 1.5x over
  the barrier on machines with at least 4 effective cores.  The per-group
  timeline (``generate_finished_at`` / ``solve_started_at`` offsets from
  run start) is recorded so the overlap is *verifiable*, not asserted: any
  group whose solve started before another group's generation finished is
  counted in ``overlap_observed``;
* **dedupe**: on an ablation-style grid where N−1 of N cases re-rate one
  structure with *identical* resolved rates (only the availability
  expression differs), exactly one stationary solve must happen — the
  outcome must report ``deduped_cases == N−1`` — and the deduped run must
  beat the non-deduped run on solve work.

Every pipelined availability must match its barrier counterpart below
1e-12, deduped or not.  On machines with fewer than 4 effective cores the
stages cannot physically overlap, so the speedup targets are recorded
honestly as measured and only the agreement/dedupe-count invariants are
enforced.

Stand-alone full runs write ``BENCH_pipeline.json`` next to the repo root;
``--quick`` runs a reduced grid as the CI smoke (no file written).
"""

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.casestudy.grid import CaseStudyGrid, scenario_case
from repro.core import CaseStudyParameters
from repro.core.scenarios import CITY_PAIRS, DistributedScenario
from repro.engine import TRGCache
from repro.engine.dispatch import effective_cpu_count, peak_rss_bytes
from repro.engine.grid import GridCase, ScenarioGridOrchestrator
from repro.engine.parallel import shutdown_shared_pool
from repro.network.geo import RIO_DE_JANEIRO
from repro.spn.rewards import ProbabilityMeasure

#: Agreement demanded between pipelined and barrier availabilities.
MAX_DELTA = 1e-12

#: Required pipeline speedup over the barrier on >= MIN_CORES cores.
PIPELINE_SPEEDUP_FLOOR = 1.5
MIN_CORES = 4

REDUCED = CaseStudyParameters(required_running_vms=1)


def full_grid() -> CaseStudyGrid:
    """~36 scenarios over 9 structures (machines x backup x single site)."""
    return CaseStudyGrid(
        city_sets=(CITY_PAIRS[0], CITY_PAIRS[4], (RIO_DE_JANEIRO,)),
        alphas=(0.35, 0.45),
        disaster_years=(100.0, 300.0),
        machines_per_datacenter=(1, 2),
        backup=(True, False),
    )


def quick_grid() -> CaseStudyGrid:
    """Reduced CI smoke: 5 scenarios over 3 structures."""
    return CaseStudyGrid(
        city_sets=(CITY_PAIRS[0], (RIO_DE_JANEIRO,)),
        alphas=(0.35, 0.45),
        disaster_years=(100.0,),
        machines_per_datacenter=(1,),
        backup=(True, False),
    )


def grid_cases(grid: CaseStudyGrid):
    return [scenario_case(s, parameters=REDUCED) for s in grid.scenarios()]


def dedupe_cases(thresholds=(1, 2, 3, 4)) -> list[GridCase]:
    """N cases of one structure, N−1 rate-identical to the first.

    Every case re-rates the same two-data-center net with its *own full
    rate assignment* — which is identical across cases, because only the
    availability threshold ``k`` (an expression, not a rate) varies.  With
    dedupe the grid must solve exactly once and share the vector.
    """
    scenario = DistributedScenario(
        *CITY_PAIRS[0],
        alpha=0.35,
        disaster_mean_time_years=100.0,
        machines_per_datacenter=1,
    )
    model = scenario.build_model(REDUCED)
    net = model.build()
    return [
        GridCase(
            name=f"threshold_k{k}",
            net=net,
            measures=(
                ProbabilityMeasure(
                    "availability",
                    model.availability_expression(required_running_vms=k),
                ),
            ),
        )
        for k in thresholds
    ]


def run_grid(cases, *, pipeline: bool, dedupe: bool, workers):
    """One cold orchestrator pass; the shared pool is reset first."""
    shutdown_shared_pool()
    with tempfile.TemporaryDirectory(prefix="bench-pipeline-") as scratch:
        orchestrator = ScenarioGridOrchestrator(
            cache=TRGCache(scratch),
            jobs=workers if workers > 1 else None,
            backend="auto",
            generation_workers=workers,
            pipeline=pipeline,
            dedupe=dedupe,
        )
        started = time.perf_counter()
        outcome = orchestrator.run(cases)
        seconds = time.perf_counter() - started
    return outcome, seconds


def count_overlaps(outcome) -> int:
    """Groups whose solve started before some other group finished generating."""
    overlaps = 0
    for group in outcome.groups:
        for other in outcome.groups:
            if other is group:
                continue
            if group.solve_started_at < other.generate_finished_at:
                overlaps += 1
                break
    return overlaps


def max_availability_delta(a, b) -> float:
    by_name = {row.name: row for row in b.results}
    return max(
        abs(row.value("availability") - by_name[row.name].value("availability"))
        for row in a.results
    )


def run(quick: bool = False) -> int:
    cores = effective_cpu_count()
    workers = max(2, min(MIN_CORES, cores))
    grid = quick_grid() if quick else full_grid()
    cases = grid_cases(grid)
    print(f"grid: {len(cases)} scenario(s), {cores} effective core(s)")

    barrier, barrier_seconds = run_grid(
        cases, pipeline=False, dedupe=False, workers=workers
    )
    print(f"barrier (two-phase)   : {barrier_seconds:7.2f}s")

    pipelined, pipeline_seconds = run_grid(
        cases, pipeline=True, dedupe=True, workers=workers
    )
    speedup = barrier_seconds / pipeline_seconds
    overlaps = count_overlaps(pipelined)
    print(
        f"pipelined (+dedupe)   : {pipeline_seconds:7.2f}s "
        f"({speedup:.2f}x vs barrier, {overlaps} group(s) overlapped)"
    )

    max_delta = max_availability_delta(pipelined, barrier)
    print(f"max |Δavailability| = {max_delta:.2e}")

    # Dedupe section: N cases, N−1 rate-identical.
    ded = dedupe_cases()
    expected_dedupes = len(ded) - 1
    plain, plain_seconds = run_grid(
        ded, pipeline=False, dedupe=False, workers=workers
    )
    deduped, dedupe_seconds = run_grid(
        ded, pipeline=False, dedupe=True, workers=workers
    )
    dedupe_delta = max_availability_delta(deduped, plain)
    dedupe_speedup = plain_seconds / dedupe_seconds
    print(
        f"dedupe ablation grid  : {dedupe_seconds:7.2f}s vs {plain_seconds:7.2f}s "
        f"undeduped ({dedupe_speedup:.2f}x, {deduped.deduped_cases} of "
        f"{len(ded)} case(s) deduped, max |Δ| = {dedupe_delta:.2e})"
    )

    report = {
        "config": (
            f"{'reduced' if quick else 'full'} mixed-structure grid "
            f"({len(cases)} scenarios, {len(pipelined.groups)} structures)"
        ),
        "scenarios": len(cases),
        "structures": len(pipelined.groups),
        "effective_cores": cores,
        "workers": workers,
        "barrier_seconds": round(barrier_seconds, 3),
        "pipeline_seconds": round(pipeline_seconds, 3),
        "pipeline_speedup": round(speedup, 3),
        "max_delta": max_delta,
        "overlap_observed": overlaps,
        "pipelined": pipelined.pipelined,
        "groups": [
            {
                "key": group.key,
                "cases": group.cases,
                "states": group.number_of_states,
                "graph_source": group.graph_source,
                "backend": group.backend,
                "deduped_cases": group.deduped_cases,
                "timeline": group.timeline(),
            }
            for group in pipelined.groups
        ],
        "dedupe": {
            "cases": len(ded),
            "expected_deduped": expected_dedupes,
            "deduped_cases": deduped.deduped_cases,
            "undeduped_seconds": round(plain_seconds, 3),
            "deduped_seconds": round(dedupe_seconds, 3),
            "speedup": round(dedupe_speedup, 3),
            "max_delta": dedupe_delta,
        },
        "speedup_target": {
            "required": PIPELINE_SPEEDUP_FLOOR,
            "measured": round(speedup, 3),
            "met": speedup >= PIPELINE_SPEEDUP_FLOOR,
        },
    }
    if cores < MIN_CORES:
        report["speedup_target"]["note"] = (
            f"machine exposes {cores} effective core(s); generation and "
            f"solving cannot physically overlap, so the "
            f">= {PIPELINE_SPEEDUP_FLOOR}x target is only asserted on "
            f">= {MIN_CORES}-effective-core machines and the ratio above "
            f"is recorded as measured"
        )

    failures = []
    if max_delta >= MAX_DELTA:
        failures.append(
            f"pipelined grid deviates from the barrier by {max_delta:.2e} "
            f"(allowed {MAX_DELTA:.0e})"
        )
    if dedupe_delta >= MAX_DELTA:
        failures.append(
            f"deduped grid deviates from the undeduped grid by "
            f"{dedupe_delta:.2e} (allowed {MAX_DELTA:.0e})"
        )
    if deduped.deduped_cases != expected_dedupes:
        failures.append(
            f"dedupe grid reported {deduped.deduped_cases} deduped case(s), "
            f"expected {expected_dedupes}"
        )
    if cores >= MIN_CORES and not report["speedup_target"]["met"]:
        failures.append(
            f"pipeline reached only {speedup:.2f}x over the barrier "
            f"(required {PIPELINE_SPEEDUP_FLOOR}x on a "
            f"{cores}-effective-core machine)"
        )

    if not quick:
        output = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
        report["peak_rss_bytes"] = peak_rss_bytes()
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


# --- pytest-benchmark entry points ----------------------------------------


def bench_pipeline_matches_barrier(benchmark):
    """Reduced grid through the pipeline; agreement vs the barrier path."""
    cases = grid_cases(quick_grid())
    workers = max(2, min(MIN_CORES, effective_cpu_count()))
    barrier, _ = run_grid(cases, pipeline=False, dedupe=False, workers=workers)

    def pipelined_run():
        outcome, _ = run_grid(cases, pipeline=True, dedupe=True, workers=workers)
        return outcome

    outcome = benchmark.pedantic(pipelined_run, rounds=1, iterations=1)
    assert max_availability_delta(outcome, barrier) < MAX_DELTA


if __name__ == "__main__":
    raise SystemExit(run(quick="--quick" in sys.argv))
