"""Disaster and parameter sensitivity of a disaster-tolerant deployment.

Answers two questions a designer would ask before signing an SLA:

1. How sensitive is the availability to the assumed disaster mean time and to
   the quality of the wide-area network (α)?  (the two knobs of Figure 7)
2. Which Table VI component parameter is worth improving (or measuring more
   carefully)?  (one-at-a-time sensitivity, experiment E3)

Run with::

    python examples/disaster_sensitivity.py
"""

from repro.casestudy import (
    DistributedSweepRunner,
    SensitivityAnalysis,
    render_sensitivity,
)
from repro.core import CaseStudyParameters, DistributedScenario
from repro.network import RIO_DE_JANEIRO, TOKYO


def main() -> None:
    runner = DistributedSweepRunner(
        parameters=CaseStudyParameters(required_running_vms=1),
        machines_per_datacenter=1,
    )

    print("=== Disaster mean time and network speed (Rio de Janeiro - Tokyo) ===")
    print(f"{'alpha':>6} {'disaster (y)':>13} {'availability':>13} {'nines':>7} {'downtime h/y':>13}")
    for alpha in (0.35, 0.40, 0.45):
        for years in (100.0, 200.0, 300.0):
            scenario = DistributedScenario(
                RIO_DE_JANEIRO, TOKYO, alpha=alpha, disaster_mean_time_years=years
            )
            result = runner.evaluate(scenario).availability
            print(
                f"{alpha:>6.2f} {years:>13.0f} {result.availability:>13.7f} "
                f"{result.nines:>7.2f} {result.downtime_hours_per_year:>13.1f}"
            )

    print()
    print("=== One-at-a-time sensitivity of the Table VI parameters (MTTF x2) ===")
    analysis = SensitivityAnalysis(factor=2.0)
    entries = analysis.run()
    print(render_sensitivity(entries))
    print()
    most_influential = entries[0]
    print(
        f"Most influential component: {most_influential.component} "
        f"(doubling its MTTF changes availability by "
        f"{most_influential.availability_delta:+.2e})"
    )


if __name__ == "__main__":
    main()
