"""Distributed data-center study: regenerate Table VII and Figure 7.

This is the paper's full case study: three single-site baselines plus the
five Rio de Janeiro city pairs (Brasília, Recife, New York, Calcutta, Tokyo)
swept over the network-speed coefficient α ∈ {0.35, 0.40, 0.45} and the
disaster mean time ∈ {100, 200, 300} years.

Run with::

    python examples/distributed_datacenters.py             # reduced, minutes
    python examples/distributed_datacenters.py --full      # faithful, tens of minutes
    python examples/distributed_datacenters.py --pairs 2   # only the first N city pairs
"""

import argparse

from repro.casestudy import (
    DistributedSweepRunner,
    best_configuration,
    render_figure7,
    render_table7,
    reproduce_figure7,
    reproduce_table7,
)
from repro.core import CaseStudyParameters
from repro.core.scenarios import CITY_PAIRS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the faithful two-PM-per-data-center configuration",
    )
    parser.add_argument(
        "--pairs", type=int, default=len(CITY_PAIRS), help="number of city pairs to evaluate"
    )
    arguments = parser.parse_args()

    if arguments.full:
        runner = DistributedSweepRunner()
    else:
        runner = DistributedSweepRunner(
            parameters=CaseStudyParameters(required_running_vms=1),
            machines_per_datacenter=1,
        )
    pairs = CITY_PAIRS[: max(1, arguments.pairs)]

    print("=== Table VII: availability of the baseline architectures ===")
    table = reproduce_table7(runner)
    print(render_table7(table))
    print()

    print("=== Figure 7: availability increase of distributed configurations ===")
    points = reproduce_figure7(runner, city_pairs=pairs)
    print(render_figure7(points))
    best = best_configuration(points)
    print()
    print(
        f"Best configuration: {best.city_pair} with alpha={best.alpha:.2f} and "
        f"disaster mean time {best.disaster_mean_time_years:.0f} years "
        f"(A = {best.availability:.7f}, {best.nines:.2f} nines)"
    )
    print(
        "Paper's conclusion to compare against: Rio de Janeiro - Brasilia with "
        "alpha = 0.45 and disaster mean time = 300 years."
    )


if __name__ == "__main__":
    main()
