"""Capacity planning: how much redundancy does an SLA actually need?

Uses the ablation study plus the RBD importance analysis to walk through the
design questions of Section III: does a warm pool pay off, what does the
backup server buy, how strict can the availability threshold ``k`` be, and
which physical component limits a single machine's availability.

Run with::

    python examples/capacity_planning.py
"""

from repro.casestudy import AblationStudy, render_ablations
from repro.core import ComponentParameters, build_nas_net_rbd, build_os_pm_rbd
from repro.metrics import number_of_nines
from repro.rbd import evaluate, importance_analysis


def main() -> None:
    print("=== Lower level: what limits a single physical machine? ===")
    components = ComponentParameters()
    os_pm = build_os_pm_rbd(components)
    nas_net = build_nas_net_rbd(components)
    for block in (os_pm, nas_net):
        result = evaluate(block)
        print(
            f"{block.name:8s}: A = {result.availability:.6f} "
            f"({number_of_nines(result.availability):.2f} nines), "
            f"equivalent MTTF = {result.mttf:.1f} h, MTTR = {result.mttr:.2f} h"
        )
    print("Birnbaum importance inside OS_PM (who to improve first):")
    for entry in importance_analysis(os_pm):
        print(f"  {entry.component:6s}: importance = {entry.birnbaum:.4f}")

    print()
    print("=== Upper level: deployment ablations (Rio de Janeiro - Brasilia) ===")
    study = AblationStudy()
    results = study.run_default_suite()
    print(render_ablations(results))

    reference = next(result for result in results if result.name == "reference")
    print()
    print("Deltas relative to the reference deployment (in nines):")
    for result in results:
        if result.name == "reference":
            continue
        delta = result.nines - reference.nines
        print(f"  {result.name:20s}: {delta:+.2f} nines ({result.description})")


if __name__ == "__main__":
    main()
