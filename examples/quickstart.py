"""Quickstart: availability of a disaster-tolerant two-data-center cloud.

Builds the paper's running example — two data centers (Rio de Janeiro and
Brasília) with two physical machines each, a backup server in São Paulo,
N = 4 VMs and an availability threshold of k = 2 running VMs — and evaluates
its steady-state availability, comparing it against a single-site deployment.

Run with::

    python examples/quickstart.py [--full]

Without ``--full`` the example uses one physical machine per data center so
it finishes in a few seconds; ``--full`` evaluates the exact case-study
configuration (tens of thousands of lumped states, a couple of minutes).
"""

import argparse

from repro.core import (
    CaseStudyParameters,
    CloudSystemModel,
    single_datacenter_spec,
    two_datacenter_spec,
)
from repro.network import BRASILIA, RIO_DE_JANEIRO, SAO_PAULO


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full case-study configuration (two PMs per data center)",
    )
    parser.add_argument("--alpha", type=float, default=0.35, help="network-speed coefficient")
    arguments = parser.parse_args()

    machines = 2 if arguments.full else 1
    required_vms = 2 if arguments.full else 1
    parameters = CaseStudyParameters(required_running_vms=required_vms)

    print("Building the single-site baseline...")
    single_site = CloudSystemModel(
        spec=single_datacenter_spec(
            machines=machines, required_running_vms=required_vms
        ),
        parameters=parameters,
    )
    baseline = single_site.availability()
    print(f"  single data center : A = {baseline.availability:.6f}"
          f"  ({baseline.nines:.2f} nines, "
          f"{baseline.downtime_hours_per_year:.1f} h downtime/year)")

    print("Building the distributed deployment (Rio de Janeiro + Brasília)...")
    distributed = CloudSystemModel(
        spec=two_datacenter_spec(
            first_location=RIO_DE_JANEIRO,
            second_location=BRASILIA,
            backup_location=SAO_PAULO,
            machines_per_datacenter=machines,
            required_running_vms=required_vms,
        ),
        parameters=parameters,
        alpha=arguments.alpha,
    )
    migration = distributed.resolved_migration_times()
    print("  derived migration times (hours):", {
        name: round(value, 3) for name, value in migration.as_dict().items()
    })
    solution = distributed.solve(symmetry_reduction=arguments.full)
    result = distributed.availability(solution=solution)
    print(f"  two data centers   : A = {result.availability:.6f}"
          f"  ({result.nines:.2f} nines, "
          f"{result.downtime_hours_per_year:.1f} h downtime/year)")
    print(f"  expected running VMs: {distributed.expected_running_vms(solution):.3f}")
    print(f"  improvement        : +{result.improvement_in_nines(baseline):.2f} nines "
          "over the single site")


if __name__ == "__main__":
    main()
