"""Run the full-scale case study (Table VII + Figure 7 + transient +
ablations) and write the results to ``results/`` for inclusion in
EXPERIMENTS.md.

Usage::

    python scripts/run_full_casestudy.py [output_directory]

The distributed configurations use the faithful two-PM-per-data-center model
(the lumped CTMC has ~5.7 × 10^4 states); the whole run takes tens of minutes
on a laptop.
"""

import json
import pathlib
import sys
import time

from repro.casestudy import (
    AblationStudy,
    DistributedSweepRunner,
    SensitivityAnalysis,
    render_ablations,
    render_figure7,
    render_sensitivity,
    render_table7,
    render_transient,
    reproduce_figure7,
    reproduce_table7,
    reproduce_transient,
)

output_directory = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
output_directory.mkdir(parents=True, exist_ok=True)

started = time.time()
runner = DistributedSweepRunner()

print("== Table VII ==", flush=True)
table7 = reproduce_table7(runner)
print(render_table7(table7), flush=True)
(output_directory / "table7.txt").write_text(render_table7(table7) + "\n")
(output_directory / "table7.json").write_text(
    json.dumps(
        [
            {
                "label": row.label,
                "availability": row.measured.availability,
                "nines": row.measured.nines,
                "paper_availability": row.paper_availability,
                "paper_nines": row.paper_nines,
            }
            for row in table7
        ],
        indent=2,
    )
)
print(f"[table7 done at {time.time() - started:.0f}s]", flush=True)

print("== Figure 7 ==", flush=True)
figure7 = reproduce_figure7(runner)
print(render_figure7(figure7), flush=True)
(output_directory / "figure7.txt").write_text(render_figure7(figure7) + "\n")
(output_directory / "figure7.json").write_text(
    json.dumps(
        [
            {
                "city_pair": point.city_pair,
                "alpha": point.alpha,
                "disaster_mean_time_years": point.disaster_mean_time_years,
                "availability": point.availability,
                "nines": point.nines,
                "improvement_over_baseline": point.improvement_over_baseline,
            }
            for point in figure7
        ],
        indent=2,
    )
)
print(f"[figure7 done at {time.time() - started:.0f}s]", flush=True)

print("== Mission-window transient (E8) ==", flush=True)
transient = reproduce_transient(runner)
print(render_transient(transient), flush=True)
(output_directory / "transient.txt").write_text(render_transient(transient) + "\n")
(output_directory / "transient.json").write_text(
    json.dumps(
        [
            {
                "vm_start_minutes": curve.vm_start_minutes,
                "times_hours": curve.times_hours.tolist(),
                "point_availability": curve.point_availability.tolist(),
                "interval_availability": curve.interval_availability.tolist(),
            }
            for curve in transient
        ],
        indent=2,
    )
)
print(f"[transient done at {time.time() - started:.0f}s]", flush=True)

print("== Sensitivity (E3) ==", flush=True)
sensitivity = SensitivityAnalysis().run()
print(render_sensitivity(sensitivity), flush=True)
(output_directory / "sensitivity.txt").write_text(render_sensitivity(sensitivity) + "\n")

print("== Ablations (E6) ==", flush=True)
ablations = AblationStudy().run_default_suite()
print(render_ablations(ablations), flush=True)
(output_directory / "ablations.txt").write_text(render_ablations(ablations) + "\n")

print(f"[all done in {time.time() - started:.0f}s]", flush=True)
