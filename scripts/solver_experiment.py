"""One-off experiment: compare steady-state solver strategies on the lumped
full case-study model.  Not part of the library; used to pick the default
solver for ~10^4-10^5-state cloud models."""

import time

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sla

from repro.core import DistributedScenario
from repro.network import BRASILIA, RIO_DE_JANEIRO
from repro.spn.ctmc_export import generator_matrix
from repro.spn.reachability import generate_tangible_reachability_graph

scenario = DistributedScenario(RIO_DE_JANEIRO, BRASILIA, alpha=0.35)
model = scenario.build_model()
t0 = time.time()
graph = generate_tangible_reachability_graph(
    model.build(), max_states=800_000, canonicalize=model.symmetry_canonicalizer()
)
print(f"gen: {graph.number_of_states} states, {graph.number_of_transitions} edges, "
      f"{time.time() - t0:.1f}s", flush=True)

Q = generator_matrix(graph).tocsc()
n = Q.shape[0]
expr = model.availability_expression()


def report(pi, label, elapsed):
    residual = np.abs(pi @ Q).max()
    from repro.spn.analysis import SteadyStateSolution

    sol = SteadyStateSolution(graph=graph, probabilities=pi)
    a = sol.probability(expr)
    print(f"{label}: {elapsed:.1f}s  residual={residual:.3e}  A={a:.7f}", flush=True)


def modified_system():
    A = Q.transpose().tolil()
    A[n - 1, :] = np.ones(n)
    b = np.zeros(n)
    b[n - 1] = 1.0
    return A.tocsc(), b


# Strategy 1: ILU-preconditioned GMRES on the modified system.
try:
    t0 = time.time()
    A, b = modified_system()
    ilu = sla.spilu(A, drop_tol=1e-6, fill_factor=20)
    M = sla.LinearOperator((n, n), ilu.solve)
    x, info = sla.gmres(A, b, M=M, rtol=1e-12, atol=0.0, maxiter=500, restart=60)
    pi = np.clip(x, 0, None); pi /= pi.sum()
    report(pi, f"ILU+GMRES (info={info})", time.time() - t0)
except Exception as exc:  # noqa: BLE001
    print("ILU+GMRES failed:", repr(exc), flush=True)

# Strategy 2: splu with MMD ordering.
try:
    t0 = time.time()
    A, b = modified_system()
    lu = sla.splu(A, permc_spec="MMD_AT_PLUS_A")
    pi = lu.solve(b)
    pi = np.clip(pi, 0, None); pi /= pi.sum()
    report(pi, "splu MMD_AT_PLUS_A", time.time() - t0)
except Exception as exc:  # noqa: BLE001
    print("splu MMD failed:", repr(exc), flush=True)

# Strategy 3: plain spsolve (COLAMD).
try:
    t0 = time.time()
    A, b = modified_system()
    pi = sla.spsolve(A, b)
    pi = np.clip(pi, 0, None); pi /= pi.sum()
    report(pi, "spsolve COLAMD", time.time() - t0)
except Exception as exc:  # noqa: BLE001
    print("spsolve failed:", repr(exc), flush=True)
