"""CI check: the persistent TRG cache round-trips bit-identically.

Runs the reduced case-study configuration twice against a throw-away cache
directory: the first run must generate (and store) the reachability graph,
the second must load it from disk and produce bit-identical markings, edge
arrays and availability.
"""

import os
import sys
import tempfile
import time


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="trg-cache-") as directory:
        os.environ["REPRO_CACHE_DIR"] = directory

        from repro.casestudy import DistributedSweepRunner
        from repro.core import CaseStudyParameters, DistributedScenario
        from repro.core.scenarios import CITY_PAIRS
        from repro.spn import graph_deviation

        def make_runner():
            return DistributedSweepRunner(
                parameters=CaseStudyParameters(required_running_vms=1),
                machines_per_datacenter=1,
            )

        scenario = DistributedScenario(*CITY_PAIRS[0])

        first = make_runner()
        started = time.perf_counter()
        first_graph = first.graph()
        generate_seconds = time.perf_counter() - started
        first_availability = first.evaluate(scenario).availability.availability
        if first.engine().graph_source != "generated":
            print(f"FAIL: first run source {first.engine().graph_source!r}")
            return 1

        second = make_runner()
        started = time.perf_counter()
        second_graph = second.graph()
        load_seconds = time.perf_counter() - started
        second_availability = second.evaluate(scenario).availability.availability
        print(
            f"generate: {generate_seconds:.2f}s, cache load: {load_seconds:.2f}s, "
            f"states: {second_graph.number_of_states}"
        )
        if second.engine().graph_source != "cache":
            print(f"FAIL: second run source {second.engine().graph_source!r} (expected cache hit)")
            return 1
        if second_graph.markings != first_graph.markings:
            print("FAIL: cached markings differ")
            return 1
        if graph_deviation(first_graph, second_graph) != 0.0:
            print("FAIL: cached graph deviates")
            return 1
        if first_availability != second_availability:
            print(
                f"FAIL: availability not bit-identical "
                f"({first_availability!r} vs {second_availability!r})"
            )
            return 1
        print(f"availability bit-identical: {second_availability!r}")
        print("OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
