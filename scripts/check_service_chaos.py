#!/usr/bin/env python
"""CI chaos smoke of the availability service (run under ``timeout``).

Two drills against the real daemon (subprocesses of ``repro serve``):

1. **Crash drill** — submit a two-group grid to a daemon whose second
   ``solve.group`` is slowed by a fault plan, ``kill -9`` it after the
   first case has checkpointed, restart over the same state directory and
   require (a) the journal recovered the job, (b) the checkpoint restored
   at least one case, and (c) every measure equals an uninterrupted
   control run **bit-identically** (Δ = 0.0).
2. **Overflow drill** — against a depth-1 queue with a slowed worker:
   the second submission must be refused with HTTP 429 + ``Retry-After``
   while the admitted job still finishes (no starvation), and a retry
   after completion must be admitted.

Exits 0 on success, 1 with a diagnostic on any violated invariant.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.service import ServiceClient, ServiceError  # noqa: E402

GRID = {"cities": [["Rio de Janeiro"]], "machines": [1, 2]}

SLOW_SECOND_SOLVE = json.dumps(
    [
        {
            "kind": "slow_task",
            "site": "solve.group",
            "after": 1,
            "count": 10,
            "delay_seconds": 8.0,
        }
    ]
)
SLOW_RUN = json.dumps(
    [
        {
            "kind": "slow_task",
            "site": "service.run.job",
            "count": 1,
            "delay_seconds": 3.0,
        }
    ]
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_daemon(state_dir: Path, fault_plan=None, extra_args=()) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    discovery = state_dir / "service.json"
    if discovery.exists():
        discovery.unlink()
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir), "--quiet", *extra_args,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if discovery.exists():
            return process
        if process.poll() is not None:
            fail(f"daemon died on startup with code {process.returncode}")
        time.sleep(0.1)
    process.kill()
    fail("daemon did not publish service.json in time")


def client_for(state_dir: Path) -> ServiceClient:
    url = json.loads((state_dir / "service.json").read_text())["url"]
    return ServiceClient(url, timeout=30.0)


def rows_by_name(client: ServiceClient, job_id: str) -> dict:
    return {row["name"]: row for row in client.results(job_id)}


def crash_drill(root: Path) -> None:
    print("[1/2] crash drill: kill -9 mid-solve, restart, bit-identical resume")
    control_state = root / "control"
    control = start_daemon(control_state)
    try:
        client = client_for(control_state)
        job = client.wait(client.submit(GRID)["job"]["id"], timeout=240.0)
        if job["state"] != "done":
            fail(f"control run ended {job['state']}: {job.get('error')}")
        control_rows = rows_by_name(client, job["id"])
    finally:
        control.terminate()
        control.wait(timeout=30.0)

    chaos_state = root / "chaos"
    chaos = start_daemon(chaos_state, fault_plan=SLOW_SECOND_SOLVE)
    client = client_for(chaos_state)
    job_id = client.submit(GRID)["job"]["id"]
    shard_dir = chaos_state / "jobs" / job_id
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if list(shard_dir.glob("grid-shard-*.jsonl")):
            break
        time.sleep(0.1)
    else:
        chaos.kill()
        fail("no checkpoint shard appeared before the kill")
    os.kill(chaos.pid, signal.SIGKILL)
    chaos.wait(timeout=30.0)
    print(f"    killed daemon pid {chaos.pid} with a checkpoint in {shard_dir}")

    revived = start_daemon(chaos_state)
    try:
        client = client_for(chaos_state)
        job = client.wait(job_id, timeout=240.0)
        if job["state"] != "done":
            fail(f"recovered job ended {job['state']}: {job.get('error')}")
        if job["summary"]["restored_cases"] < 1:
            fail("restart did not restore any case from the checkpoint")
        chaos_rows = rows_by_name(client, job_id)
    finally:
        revived.terminate()
        revived.wait(timeout=30.0)

    if set(chaos_rows) != set(control_rows):
        fail(f"case sets differ: {sorted(chaos_rows)} vs {sorted(control_rows)}")
    for name, control_row in control_rows.items():
        for measure, value in control_row["measures"].items():
            delta = abs(chaos_rows[name]["measures"][measure] - value)
            if delta != 0.0:
                fail(f"{name}/{measure} drifted by {delta} after recovery")
    print(
        f"    OK: {len(chaos_rows)} case(s), "
        f"{job['summary']['restored_cases']} restored from checkpoint, delta = 0.0"
    )


def overflow_drill(root: Path) -> None:
    print("[2/2] overflow drill: depth-1 queue refuses with 429, no starvation")
    state = root / "overflow"
    daemon = start_daemon(state, fault_plan=SLOW_RUN, extra_args=("--queue-depth", "1"))
    try:
        client = client_for(state)
        first = client.submit(GRID)["job"]
        other = {"cities": [["Rio de Janeiro"]], "machines": [4]}
        try:
            client.submit(other)
        except ServiceError as error:
            if error.status != 429:
                fail(f"expected 429 on the full queue, got {error.status}")
            if not error.retry_after or error.retry_after <= 0:
                fail("429 refusal carried no positive retry_after hint")
        else:
            fail("second submission was admitted past a depth-1 queue")
        job = client.wait(first["id"], timeout=240.0)
        if job["state"] != "done":
            fail(f"admitted job starved under overload: {job['state']}")
        retry = client.submit(other)
        if retry["deduplicated"]:
            fail("post-completion retry deduplicated instead of admitting")
        print("    OK: 429 with Retry-After, in-flight job finished, retry admitted")
    finally:
        daemon.terminate()
        daemon.wait(timeout=30.0)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-chaos-") as root:
        root = Path(root)
        os.environ.setdefault("REPRO_CACHE_DIR", str(root / "cache"))
        crash_drill(root)
        overflow_drill(root)
    print("service chaos smoke: all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
